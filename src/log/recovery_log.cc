#include "log/recovery_log.h"

#include <algorithm>
#include <fstream>
#include <ostream>

#include "common/check.h"
#include "common/string_util.h"

namespace aer {
namespace {

// Parses one already-split line into `e`. Returns false with a reason when
// any field is malformed. The symptom table is only touched on success.
bool ParseFields(const std::vector<std::string_view>& fields,
                 SymptomTable& symptoms, LogEntry& e, std::string& reason) {
  if (fields.size() != 3) {
    reason = StrFormat("expected 3 tab-separated fields, got %zu",
                       fields.size());
    return false;
  }
  const auto time = ParseInt64(fields[0]);
  if (!time.has_value()) {
    reason = "unparseable time field";
    return false;
  }
  std::string_view machine_field = Trim(fields[1]);
  if (machine_field.empty() || machine_field.front() != 'm') {
    reason = "machine field lacks 'm' prefix";
    return false;
  }
  const auto machine = ParseInt64(machine_field.substr(1));
  if (!machine.has_value()) {
    reason = "unparseable machine id";
    return false;
  }
  const std::string_view desc = Trim(fields[2]);

  e.time = *time;
  e.machine = static_cast<MachineId>(*machine);
  if (desc == "Success") {
    e.kind = EntryKind::kSuccess;
  } else if (StartsWith(desc, "error:")) {
    e.kind = EntryKind::kSymptom;
    e.symptom = symptoms.Intern(desc.substr(6));
  } else if (auto action = ParseAction(desc); action.has_value()) {
    e.kind = EntryKind::kAction;
    e.action = *action;
  } else {
    reason = "unknown description";
    return false;
  }
  return true;
}

// Lenient repair: splits on runs of any whitespace instead of single tabs
// (tolerates space-separated exports and stray CRs) and drops trailing
// empty fields. Returns the repaired field list, or empty if hopeless.
std::vector<std::string_view> RepairFields(std::string_view line) {
  std::vector<std::string_view> fields;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t' ||
                               line[i] == '\r')) {
      ++i;
    }
    const std::size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t' &&
           line[i] != '\r') {
      ++i;
    }
    if (i > start) fields.push_back(line.substr(start, i - start));
  }
  return fields;
}

}  // namespace

void RecoveryLog::SortByTime() {
  std::stable_sort(entries_.begin(), entries_.end(),
                   [](const LogEntry& a, const LogEntry& b) {
                     if (a.time != b.time) return a.time < b.time;
                     return a.machine < b.machine;
                   });
}

void RecoveryLog::Merge(const RecoveryLog& other) {
  // Remap the other table's symptom ids into ours.
  std::vector<SymptomId> remap(other.symptoms_.size(), kInvalidSymptom);
  for (SymptomId id = 0; id < static_cast<SymptomId>(other.symptoms_.size());
       ++id) {
    remap[static_cast<std::size_t>(id)] =
        symptoms_.Intern(other.symptoms_.Name(id));
  }
  entries_.reserve(entries_.size() + other.entries_.size());
  for (LogEntry e : other.entries_) {
    if (e.kind == EntryKind::kSymptom) {
      e.symptom = remap[static_cast<std::size_t>(e.symptom)];
    }
    entries_.push_back(e);
  }
}

void RecoveryLog::Write(std::ostream& os) const {
  for (const LogEntry& e : entries_) {
    os << e.time << '\t' << 'm' << e.machine << '\t'
       << DescribeEntry(e, symptoms_) << '\n';
  }
}

void RecoveryLog::WriteFile(const std::string& path) const {
  std::ofstream os(path);
  AER_CHECK(os.good()) << "cannot open " << path << " for writing";
  Write(os);
  AER_CHECK(os.good()) << "short write to " << path;
}

LogParseResult RecoveryLog::Read(std::istream& is, RecoveryLog& out,
                                 LogParseMode mode) {
  out = RecoveryLog();
  LogParseResult result;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (Trim(line).empty()) continue;

    LogEntry e;
    std::string reason;
    if (ParseFields(Split(line, '\t'), out.symptoms_, e, reason)) {
      out.entries_.push_back(e);
      ++result.parsed;
      continue;
    }

    if (mode == LogParseMode::kLenient) {
      std::string repair_reason;
      if (ParseFields(RepairFields(line), out.symptoms_, e, repair_reason)) {
        out.entries_.push_back(e);
        ++result.parsed;
        ++result.repaired;
        continue;
      }
    }

    if (result.first_error_line == 0) {
      result.first_error_line = lineno;
      result.first_error = reason;
    }
    if (mode == LogParseMode::kStrict) {
      result.ok = false;
      return result;
    }
    ++result.skipped;
  }
  return result;
}

LogParseResult RecoveryLog::ReadFile(const std::string& path,
                                     RecoveryLog& out, LogParseMode mode) {
  std::ifstream is(path);
  if (!is.good()) {
    out = RecoveryLog();
    LogParseResult result;
    result.ok = false;
    result.first_error = "cannot open " + path;
    return result;
  }
  return Read(is, out, mode);
}

bool RecoveryLog::Read(std::istream& is, RecoveryLog& out) {
  return Read(is, out, LogParseMode::kStrict).ok;
}

bool RecoveryLog::ReadFile(const std::string& path, RecoveryLog& out) {
  return ReadFile(path, out, LogParseMode::kStrict).ok;
}

}  // namespace aer
