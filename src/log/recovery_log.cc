#include "log/recovery_log.h"

#include <algorithm>
#include <fstream>
#include <ostream>

#include "common/check.h"
#include "common/string_util.h"

namespace aer {

void RecoveryLog::SortByTime() {
  std::stable_sort(entries_.begin(), entries_.end(),
                   [](const LogEntry& a, const LogEntry& b) {
                     if (a.time != b.time) return a.time < b.time;
                     return a.machine < b.machine;
                   });
}

void RecoveryLog::Merge(const RecoveryLog& other) {
  // Remap the other table's symptom ids into ours.
  std::vector<SymptomId> remap(other.symptoms_.size(), kInvalidSymptom);
  for (SymptomId id = 0; id < static_cast<SymptomId>(other.symptoms_.size());
       ++id) {
    remap[static_cast<std::size_t>(id)] =
        symptoms_.Intern(other.symptoms_.Name(id));
  }
  entries_.reserve(entries_.size() + other.entries_.size());
  for (LogEntry e : other.entries_) {
    if (e.kind == EntryKind::kSymptom) {
      e.symptom = remap[static_cast<std::size_t>(e.symptom)];
    }
    entries_.push_back(e);
  }
}

void RecoveryLog::Write(std::ostream& os) const {
  for (const LogEntry& e : entries_) {
    os << e.time << '\t' << 'm' << e.machine << '\t'
       << DescribeEntry(e, symptoms_) << '\n';
  }
}

void RecoveryLog::WriteFile(const std::string& path) const {
  std::ofstream os(path);
  AER_CHECK(os.good());
  Write(os);
  AER_CHECK(os.good());
}

bool RecoveryLog::Read(std::istream& is, RecoveryLog& out) {
  out = RecoveryLog();
  std::string line;
  while (std::getline(is, line)) {
    if (Trim(line).empty()) continue;
    const auto fields = Split(line, '\t');
    if (fields.size() != 3) return false;
    const auto time = ParseInt64(fields[0]);
    if (!time.has_value()) return false;
    std::string_view machine_field = fields[1];
    if (machine_field.empty() || machine_field.front() != 'm') return false;
    const auto machine = ParseInt64(machine_field.substr(1));
    if (!machine.has_value()) return false;
    const std::string_view desc = Trim(fields[2]);

    LogEntry e;
    e.time = *time;
    e.machine = static_cast<MachineId>(*machine);
    if (desc == "Success") {
      e.kind = EntryKind::kSuccess;
    } else if (StartsWith(desc, "error:")) {
      e.kind = EntryKind::kSymptom;
      e.symptom = out.symptoms_.Intern(desc.substr(6));
    } else if (auto action = ParseAction(desc); action.has_value()) {
      e.kind = EntryKind::kAction;
      e.action = *action;
    } else {
      return false;
    }
    out.entries_.push_back(e);
  }
  return true;
}

bool RecoveryLog::ReadFile(const std::string& path, RecoveryLog& out) {
  std::ifstream is(path);
  if (!is.good()) return false;
  return Read(is, out);
}

}  // namespace aer
