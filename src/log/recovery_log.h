// The recovery log: a time-ordered sequence of LogEntry plus the symptom
// intern table, with lossless text (de)serialization in the paper's
// <time, machine, description> format.
#ifndef AER_LOG_RECOVERY_LOG_H_
#define AER_LOG_RECOVERY_LOG_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "log/log_entry.h"
#include "log/symptom.h"

namespace aer {

class RecoveryLog {
 public:
  RecoveryLog() = default;

  void Append(const LogEntry& entry) { entries_.push_back(entry); }

  // Stable sort by (time, machine); entries of one machine at equal times
  // keep insertion order so symptom-then-action sequences survive.
  void SortByTime();

  const std::vector<LogEntry>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  SymptomTable& symptoms() { return symptoms_; }
  const SymptomTable& symptoms() const { return symptoms_; }

  // Appends all of `other`'s entries, re-interning its symptom names into
  // this log's table (ids are remapped). Use for multi-period training:
  // merge last quarter's log into the accumulated history, re-sort, retrain.
  void Merge(const RecoveryLog& other);

  // Text serialization: one entry per line, "<time>\t<machine>\t<desc>".
  void Write(std::ostream& os) const;
  void WriteFile(const std::string& path) const;

  // Parses a log written by Write(); aborts the parse (returns false) on the
  // first malformed line. Symptom names are re-interned, so round-tripping
  // preserves entry equality up to symptom-id renumbering; ids are identical
  // when the log was written by this class (first-seen order).
  static bool Read(std::istream& is, RecoveryLog& out);
  static bool ReadFile(const std::string& path, RecoveryLog& out);

 private:
  std::vector<LogEntry> entries_;
  SymptomTable symptoms_;
};

}  // namespace aer

#endif  // AER_LOG_RECOVERY_LOG_H_
