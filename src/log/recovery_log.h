// The recovery log: a time-ordered sequence of LogEntry plus the symptom
// intern table, with lossless text (de)serialization in the paper's
// <time, machine, description> format.
#ifndef AER_LOG_RECOVERY_LOG_H_
#define AER_LOG_RECOVERY_LOG_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "log/log_entry.h"
#include "log/symptom.h"

namespace aer {

// How Read() treats malformed lines. Strict is the default everywhere (a
// log written by this class must round-trip exactly, and tests depend on
// that); lenient is for production ingestion, where a truncated tail or a
// garbled line must cost one entry, not the whole file.
enum class LogParseMode {
  kStrict,   // abort on the first malformed line
  kLenient,  // skip malformed lines (after attempting repair) and count them
};

// Outcome of a (possibly lenient) parse. `ok` is false when a strict parse
// hit a malformed line or the file could not be opened; a lenient parse of a
// readable stream always has ok == true, however dirty the input.
struct LogParseResult {
  bool ok = true;
  std::size_t parsed = 0;    // entries appended to the output log
  std::size_t repaired = 0;  // subset of `parsed` that needed repair
  std::size_t skipped = 0;   // malformed lines dropped (lenient only)
  // Line number (1-based) and description of the first malformed line, for
  // operator-facing error messages. Set even when lenient skips the line.
  std::size_t first_error_line = 0;
  std::string first_error;
};

class RecoveryLog {
 public:
  RecoveryLog() = default;

  void Append(const LogEntry& entry) { entries_.push_back(entry); }

  // Stable sort by (time, machine); entries of one machine at equal times
  // keep insertion order so symptom-then-action sequences survive.
  void SortByTime();

  const std::vector<LogEntry>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  SymptomTable& symptoms() { return symptoms_; }
  const SymptomTable& symptoms() const { return symptoms_; }

  // Appends all of `other`'s entries, re-interning its symptom names into
  // this log's table (ids are remapped). Use for multi-period training:
  // merge last quarter's log into the accumulated history, re-sort, retrain.
  void Merge(const RecoveryLog& other);

  // Text serialization: one entry per line, "<time>\t<machine>\t<desc>".
  void Write(std::ostream& os) const;
  void WriteFile(const std::string& path) const;

  // Parses a log written by Write(). Strict mode aborts the parse on the
  // first malformed line; lenient mode first attempts line repair (stray CR,
  // space-for-tab separators, trailing empty fields), then skips what still
  // does not parse, counting both. Symptom names are re-interned, so
  // round-tripping preserves entry equality up to symptom-id renumbering;
  // ids are identical when the log was written by this class (first-seen
  // order).
  static LogParseResult Read(std::istream& is, RecoveryLog& out,
                             LogParseMode mode);
  static LogParseResult ReadFile(const std::string& path, RecoveryLog& out,
                                 LogParseMode mode);

  // Strict-mode conveniences (the original API).
  static bool Read(std::istream& is, RecoveryLog& out);
  static bool ReadFile(const std::string& path, RecoveryLog& out);

 private:
  std::vector<LogEntry> entries_;
  SymptomTable symptoms_;
};

}  // namespace aer

#endif  // AER_LOG_RECOVERY_LOG_H_
