#include "obs/chrome_trace.h"

#include <cstdint>
#include <map>
#include <utility>

#include "common/json_writer.h"
#include "common/string_util.h"

namespace aer::obs {
namespace {

constexpr std::int64_t kMicrosPerSimSecond = 1000000;

JsonValue Meta(const char* what, int pid, std::int64_t tid,
               const std::string& name) {
  JsonValue event = JsonValue::Object();
  event.Set("name", JsonValue::String(what));
  event.Set("ph", JsonValue::String("M"));
  event.Set("pid", JsonValue::Int(pid));
  event.Set("tid", JsonValue::Int(tid));
  JsonValue args = JsonValue::Object();
  args.Set("name", JsonValue::String(name));
  event.Set("args", std::move(args));
  return event;
}

}  // namespace

std::string ChromeTraceJson(const TraceDag& dag,
                            const std::vector<CriticalPath>& paths) {
  std::map<TraceId, const CriticalPath*> path_of;
  for (const CriticalPath& path : paths) path_of[path.trace_id] = &path;

  JsonValue events = JsonValue::Array();
  int pid = 0;
  for (const TraceProcess& process : dag.processes) {
    ++pid;
    const std::string title = StrFormat(
        "recovery %016llx machine %lld",
        static_cast<unsigned long long>(process.trace_id),
        static_cast<long long>(process.machine));
    events.Append(Meta("process_name", pid, 0, title));
    events.Append(Meta("thread_name", pid, 0, "critical-path"));
    events.Append(Meta("thread_name", pid, 1, "events"));

    const auto it = path_of.find(process.trace_id);
    if (it != path_of.end()) {
      for (const StageSegment& segment : it->second->segments) {
        JsonValue event = JsonValue::Object();
        event.Set("name", JsonValue::String(
                              std::string(TraceStageName(segment.stage))));
        event.Set("cat", JsonValue::String("critical-path"));
        event.Set("ph", JsonValue::String("X"));
        event.Set("pid", JsonValue::Int(pid));
        event.Set("tid", JsonValue::Int(0));
        event.Set("ts", JsonValue::Int(segment.from * kMicrosPerSimSecond));
        event.Set("dur", JsonValue::Int((segment.to - segment.from) *
                                        kMicrosPerSimSecond));
        events.Append(std::move(event));
      }
    }

    for (const TraceDagNode& node : process.nodes) {
      const TraceRecord& r = node.record;
      JsonValue event = JsonValue::Object();
      event.Set("name",
                JsonValue::String(std::string(TraceEventKindName(r.kind))));
      event.Set("cat", JsonValue::String("trace-event"));
      event.Set("ph", JsonValue::String("i"));
      event.Set("s", JsonValue::String("t"));
      event.Set("pid", JsonValue::Int(pid));
      event.Set("tid", JsonValue::Int(1));
      event.Set("ts", JsonValue::Int(r.time * kMicrosPerSimSecond));
      JsonValue args = JsonValue::Object();
      args.Set("parent", JsonValue::Int(node.parent));
      if (r.node >= 0) args.Set("node", JsonValue::Int(r.node));
      if (r.attempt >= 0) args.Set("attempt", JsonValue::Int(r.attempt));
      if (r.action >= 0) args.Set("action", JsonValue::Int(r.action));
      if (r.duplicate) args.Set("duplicate", JsonValue::Bool(true));
      if (node.orphan) args.Set("orphan", JsonValue::Bool(true));
      if (!r.detail.empty()) args.Set("detail", JsonValue::String(r.detail));
      event.Set("args", std::move(args));
      events.Append(std::move(event));
    }
  }

  // Global leadership / lifecycle events get their own synthetic process so
  // election gaps line up visually with every recovery lane.
  if (!dag.global_events.empty()) {
    ++pid;
    events.Append(Meta("process_name", pid, 0, "control plane"));
    events.Append(Meta("thread_name", pid, 0, "leadership"));
    for (const TraceRecord& r : dag.global_events) {
      JsonValue event = JsonValue::Object();
      event.Set("name",
                JsonValue::String(std::string(TraceEventKindName(r.kind))));
      event.Set("cat", JsonValue::String("control-plane"));
      event.Set("ph", JsonValue::String("i"));
      event.Set("s", JsonValue::String("p"));
      event.Set("pid", JsonValue::Int(pid));
      event.Set("tid", JsonValue::Int(0));
      event.Set("ts", JsonValue::Int(r.time * kMicrosPerSimSecond));
      JsonValue args = JsonValue::Object();
      if (r.node >= 0) args.Set("node", JsonValue::Int(r.node));
      if (r.epoch != 0) {
        args.Set("epoch", JsonValue::Int(static_cast<std::int64_t>(r.epoch)));
      }
      if (!r.detail.empty()) args.Set("detail", JsonValue::String(r.detail));
      event.Set("args", std::move(args));
      events.Append(std::move(event));
    }
  }

  JsonValue root = JsonValue::Object();
  root.Set("displayTimeUnit", JsonValue::String("ms"));
  root.Set("traceEvents", std::move(events));
  return root.ToString();
}

}  // namespace aer::obs
