#include "obs/flight_recorder.h"

#include <atomic>
#include <csignal>
#include <cstdio>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/json_writer.h"
#include "common/mutex.h"
#include "common/profiler.h"
#include "obs/trace_dag.h"

namespace aer::obs {
namespace {

constexpr int kFatalSignals[] = {SIGSEGV, SIGBUS, SIGFPE, SIGILL, SIGABRT};
constexpr std::size_t kNumFatalSignals =
    sizeof(kFatalSignals) / sizeof(kFatalSignals[0]);

const char* SignalName(int signo) {
  switch (signo) {
    case SIGSEGV:
      return "SIGSEGV";
    case SIGBUS:
      return "SIGBUS";
    case SIGFPE:
      return "SIGFPE";
    case SIGILL:
      return "SIGILL";
    case SIGABRT:
      return "SIGABRT";
  }
  return "unknown";
}

struct Installed {
  FlightRecorderConfig config;
  const Tracer* tracer = nullptr;
  const MetricsRegistry* metrics = nullptr;
  const TimeSeriesRecorder* timeseries = nullptr;
  const TraceCollector* traces = nullptr;
  struct sigaction previous[kNumFatalSignals] = {};
  // Intrusive retire chain (see g_retired below).
  Installed* retired_next = nullptr;
};

// Guards installation state; never taken on the crash path (the handlers
// read `g_installed` via the atomic pointer only).
Mutex& InstallMutex() {
  static Mutex mu;
  return mu;
}

std::atomic<Installed*> g_installed{nullptr};

// State blocks are never freed: a crashing thread may have loaded the
// pointer just before another thread uninstalled. Uninstall chains the
// block here instead of dropping the last reference, so the deliberate
// retention stays *reachable* — LeakSanitizer would otherwise report each
// uninstalled block as lost. Guarded by InstallMutex().
Installed* g_retired = nullptr;

// One crash dump per process: a fault inside the dump path (or a cascading
// CHECK + abort) must not recurse.
std::atomic<bool> g_dumped{false};

bool WriteDump(const Installed& state, std::string_view reason,
               std::string_view detail) {
  JsonValue root = JsonValue::Object();
  root.Set("reason", JsonValue::String(reason));
  root.Set("detail", JsonValue::String(detail));

  JsonValue spans_section = JsonValue::Object();
  if (state.tracer != nullptr) {
    std::vector<Span> spans = state.tracer->Snapshot();
    if (spans.size() > state.config.max_spans) {
      spans.erase(spans.begin(),
                  spans.end() - static_cast<std::ptrdiff_t>(
                                    state.config.max_spans));
    }
    spans_section.Set("dropped",
                      JsonValue::Int(state.tracer->dropped_count()));
    spans_section.Set(
        "open", JsonValue::Int(
                    static_cast<std::int64_t>(state.tracer->open_count())));
    spans_section.Set("spans", Tracer::SpansToJson(spans));
  }
  root.Set("spans", std::move(spans_section));

  if (state.metrics != nullptr) {
    root.Set("metrics", state.metrics->ExportJson());
  }

  JsonValue ts_section = JsonValue::Object();
  if (state.timeseries != nullptr) {
    ts_section.Set("closed",
                   JsonValue::Int(state.timeseries->windows_closed()));
    ts_section.Set("dropped",
                   JsonValue::Int(state.timeseries->windows_dropped()));
    const std::vector<TimeSeriesWindow> windows = state.timeseries->Windows();
    if (!windows.empty()) {
      const TimeSeriesWindow& w = windows.back();
      JsonValue window = JsonValue::Object();
      window.Set("index", JsonValue::Int(w.index));
      window.Set("start", JsonValue::Int(w.start));
      window.Set("end", JsonValue::Int(w.end));
      JsonValue counters = JsonValue::Object();
      for (const auto& [name, delta] : w.counter_deltas) {
        counters.Set(name, JsonValue::Int(delta));
      }
      window.Set("counters", std::move(counters));
      ts_section.Set("last_window", std::move(window));
    }
  }
  root.Set("timeseries", std::move(ts_section));

  if (state.traces != nullptr) {
    // The stitched DAG of the most recent recovery processes; spans above
    // carry matching trace ids, so the dump is filterable by trace.
    std::vector<TraceRecord> records = state.traces->Snapshot();
    if (records.size() > state.config.max_trace_records) {
      records.erase(records.begin(),
                    records.end() - static_cast<std::ptrdiff_t>(
                                        state.config.max_trace_records));
    }
    root.Set("trace_dag", TraceDagToJson(BuildTraceDag(records)));
  }

  root.Set("profile",
           ProfileRegistry::ProfileToJson(ProfileRegistry::Global().Snapshot(),
                                          {.include_wall = true}));

  const std::string out = root.ToString();
  std::FILE* f = std::fopen(state.config.path.c_str(), "w");
  if (f == nullptr) return false;
  const std::size_t written = std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  return written == out.size();
}

// Best-effort crash dump; see the signal-safety caveat in the header.
void CrashDump(std::string_view reason, std::string_view detail) {
  if (g_dumped.exchange(true, std::memory_order_acq_rel)) return;
  const Installed* state = g_installed.load(std::memory_order_acquire);
  if (state == nullptr) return;
  WriteDump(*state, reason, detail);
}

void CheckHook(const char* message) { CrashDump("check_failure", message); }

void SignalHandler(int signo) {
  CrashDump("signal", SignalName(signo));
  // Re-deliver with default disposition so the exit status (and any core
  // dump) look exactly as they would without the recorder.
  std::signal(signo, SIG_DFL);
  std::raise(signo);
}

}  // namespace

void FlightRecorder::Install(FlightRecorderConfig config, const Tracer* tracer,
                             const MetricsRegistry* metrics,
                             const TimeSeriesRecorder* timeseries,
                             const TraceCollector* traces) {
  MutexLock lock(InstallMutex());
  Installed* state = g_installed.load(std::memory_order_acquire);
  const bool first = state == nullptr;
  // Never freed: a crashing thread may still hold the pointer while
  // another thread uninstalls. Uninstall retires the block to g_retired
  // (kept reachable) rather than deleting it.
  if (first) state = new Installed();
  state->config = std::move(config);
  state->tracer = tracer;
  state->metrics = metrics;
  state->timeseries = timeseries;
  state->traces = traces;
  if (first) {
    struct sigaction action = {};
    action.sa_handler = &SignalHandler;
    sigemptyset(&action.sa_mask);
    for (std::size_t i = 0; i < kNumFatalSignals; ++i) {
      sigaction(kFatalSignals[i], &action, &state->previous[i]);
    }
  }
  g_installed.store(state, std::memory_order_release);
  SetCheckFailureHook(&CheckHook);
}

void FlightRecorder::Uninstall() {
  MutexLock lock(InstallMutex());
  Installed* state = g_installed.load(std::memory_order_acquire);
  if (state == nullptr) return;
  SetCheckFailureHook(nullptr);
  for (std::size_t i = 0; i < kNumFatalSignals; ++i) {
    sigaction(kFatalSignals[i], &state->previous[i], nullptr);
  }
  state->retired_next = g_retired;
  g_retired = state;
  g_installed.store(nullptr, std::memory_order_release);
}

bool FlightRecorder::DumpNow(std::string_view detail) {
  const Installed* state = g_installed.load(std::memory_order_acquire);
  if (state == nullptr) return false;
  return WriteDump(*state, "manual", detail);
}

bool FlightRecorder::installed() {
  return g_installed.load(std::memory_order_acquire) != nullptr;
}

}  // namespace aer::obs
