#include "obs/tracer.h"

#include <algorithm>
#include <set>
#include <utility>

#include "common/check.h"
#include "common/string_util.h"

namespace aer::obs {

Tracer::Tracer(std::size_t capacity) : capacity_(capacity) {
  AER_CHECK_GT(capacity, 0u) << "tracer ring buffer needs at least one slot";
}

SpanId Tracer::StartSpan(std::string_view name, SimTime start, SpanId parent) {
  MutexLock lock(mu_);
  const SpanId id = next_id_++;
  Span& span = open_[id];
  span.id = id;
  span.parent = parent;
  span.name = std::string(name);
  span.start = start;
  return id;
}

void Tracer::SetLabel(SpanId id, std::string_view label) {
  MutexLock lock(mu_);
  auto it = open_.find(id);
  if (it != open_.end()) it->second.label = std::string(label);
}

void Tracer::SetMachine(SpanId id, std::int64_t machine) {
  MutexLock lock(mu_);
  auto it = open_.find(id);
  if (it != open_.end()) it->second.machine = machine;
}

void Tracer::SetTraceId(SpanId id, TraceId trace_id) {
  MutexLock lock(mu_);
  auto it = open_.find(id);
  if (it != open_.end()) it->second.trace_id = trace_id;
}

void Tracer::AddEvent(SpanId id, SimTime time, std::string_view label) {
  MutexLock lock(mu_);
  auto it = open_.find(id);
  if (it == open_.end()) return;
  Span& span = it->second;
  // Sim time within a span is monotonic by contract; clamp stragglers so a
  // dump never shows an event before its span opened.
  span.events.push_back({std::max(time, span.start), std::string(label)});
}

void Tracer::FinishLocked(Span span, SimTime end) {
  span.end = std::max(end, span.start);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(span));
  } else {
    ring_[ring_next_] = std::move(span);
    ring_next_ = (ring_next_ + 1) % capacity_;
    ++dropped_;
  }
  ++completed_;
}

void Tracer::EndSpan(SpanId id, SimTime end) {
  MutexLock lock(mu_);
  auto it = open_.find(id);
  if (it == open_.end()) return;
  Span span = std::move(it->second);
  open_.erase(it);
  FinishLocked(std::move(span), end);
}

SpanId Tracer::Instant(std::string_view name, SimTime time,
                       std::string_view label, SpanId parent,
                       std::int64_t machine) {
  MutexLock lock(mu_);
  const SpanId id = next_id_++;
  Span span;
  span.id = id;
  span.parent = parent;
  span.name = std::string(name);
  span.label = std::string(label);
  span.machine = machine;
  span.start = time;
  FinishLocked(std::move(span), time);
  return id;
}

std::vector<Span> Tracer::Snapshot() const {
  MutexLock lock(mu_);
  std::vector<Span> out;
  out.reserve(ring_.size());
  // ring_next_ is the oldest slot once the ring has wrapped.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(ring_next_ + i) % ring_.size()]);
  }
  // Flag parent links the eviction policy has severed: a parent id that is
  // neither retained in the ring nor still open was dropped, and dumps must
  // say so rather than print an id that no longer resolves.
  std::set<SpanId> known;
  for (const Span& span : out) known.insert(span.id);
  for (const auto& [id, span] : open_) known.insert(id);
  for (Span& span : out) {
    span.parent_evicted =
        span.parent != kNoSpan && known.find(span.parent) == known.end();
  }
  return out;
}

std::int64_t Tracer::completed_count() const {
  MutexLock lock(mu_);
  return completed_;
}

std::int64_t Tracer::dropped_count() const {
  MutexLock lock(mu_);
  return dropped_;
}

std::size_t Tracer::open_count() const {
  MutexLock lock(mu_);
  return open_.size();
}

std::string Tracer::FormatSpans(const std::vector<Span>& spans) {
  std::string out;
  for (const Span& span : spans) {
    const std::string parent =
        span.parent_evicted
            ? std::string("(evicted)")
            : StrFormat("%lld", static_cast<long long>(span.parent));
    out += StrFormat(
        "span id=%lld parent=%s name=%s label=%s machine=%lld "
        "start=%lld end=%lld dur=%lld\n",
        static_cast<long long>(span.id), parent.c_str(), span.name.c_str(),
        span.label.empty() ? "-" : span.label.c_str(),
        static_cast<long long>(span.machine),
        static_cast<long long>(span.start), static_cast<long long>(span.end),
        static_cast<long long>(span.duration()));
    if (span.trace_id != kNoTrace) {
      // Appended (never inline) and only when tagged, so untraced dumps —
      // including the pre-tracing goldens — keep their exact bytes.
      out.pop_back();
      out += StrFormat(" trace=%016llx\n",
                       static_cast<unsigned long long>(span.trace_id));
    }
    for (const SpanEvent& event : span.events) {
      out += StrFormat("  event t=%lld %s\n",
                       static_cast<long long>(event.time),
                       event.label.c_str());
    }
  }
  return out;
}

JsonValue Tracer::SpansToJson(const std::vector<Span>& spans) {
  JsonValue root = JsonValue::Array();
  for (const Span& span : spans) {
    JsonValue value = JsonValue::Object();
    value.Set("id", JsonValue::Int(span.id));
    if (span.parent_evicted) {
      value.Set("parent", JsonValue::String("(evicted)"));
    } else {
      value.Set("parent", JsonValue::Int(span.parent));
    }
    value.Set("name", JsonValue::String(span.name));
    value.Set("label", JsonValue::String(span.label));
    value.Set("machine", JsonValue::Int(span.machine));
    if (span.trace_id != kNoTrace) {
      value.Set("trace_id",
                JsonValue::String(StrFormat(
                    "%016llx",
                    static_cast<unsigned long long>(span.trace_id))));
    }
    value.Set("start", JsonValue::Int(span.start));
    value.Set("end", JsonValue::Int(span.end));
    value.Set("duration_s", JsonValue::Int(span.duration()));
    JsonValue events = JsonValue::Array();
    for (const SpanEvent& event : span.events) {
      JsonValue e = JsonValue::Object();
      e.Set("t", JsonValue::Int(event.time));
      e.Set("label", JsonValue::String(event.label));
      events.Append(std::move(e));
    }
    value.Set("events", std::move(events));
    root.Append(std::move(value));
  }
  return root;
}

std::vector<Span> Tracer::FilterByLabel(const std::vector<Span>& spans,
                                        std::string_view label) {
  std::vector<Span> out;
  for (const Span& span : spans) {
    if (span.label == label) out.push_back(span);
  }
  return out;
}

std::vector<Span> Tracer::TopSlowest(const std::vector<Span>& spans,
                                     std::size_t n,
                                     std::string_view name_filter) {
  std::vector<Span> out;
  for (const Span& span : spans) {
    if (!name_filter.empty() && span.name != name_filter) continue;
    out.push_back(span);
  }
  std::sort(out.begin(), out.end(), [](const Span& a, const Span& b) {
    if (a.duration() != b.duration()) return a.duration() > b.duration();
    return a.id < b.id;
  });
  if (out.size() > n) out.resize(n);
  return out;
}

}  // namespace aer::obs
