#include "obs/trace_dag.h"

#include <unordered_map>
#include <utility>

#include "common/string_util.h"

namespace aer::obs {
namespace {

bool IsOrphanKind(TraceEventKind kind) {
  return kind == TraceEventKind::kDispatchDrop ||
         kind == TraceEventKind::kResultLost ||
         kind == TraceEventKind::kMessageDrop;
}

// Latest node before `upto` whose kind is in `kinds` (and, when
// `attempt` >= 0, whose attempt matches). -1 when none qualifies.
int LatestOf(const std::vector<TraceDagNode>& nodes, int upto,
             std::initializer_list<TraceEventKind> kinds, int attempt = -1) {
  for (int i = upto - 1; i >= 0; --i) {
    for (const TraceEventKind kind : kinds) {
      if (nodes[i].record.kind != kind) continue;
      if (attempt >= 0 && nodes[i].record.attempt != attempt) continue;
      return i;
    }
  }
  return -1;
}

// Frozen parent rules for the record about to be appended after `nodes`
// (so its index will be nodes.size() > 0). Returns an earlier index (falls
// back to the latest earlier node, so a parent always exists).
int ParentOf(const std::vector<TraceDagNode>& nodes, const TraceRecord& r) {
  const int index = static_cast<int>(nodes.size());
  int parent = -1;
  switch (r.kind) {
    case TraceEventKind::kIncident:  // overlapping re-injection
    case TraceEventKind::kSymptom:
      parent = 0;
      break;
    case TraceEventKind::kDispatch:
      // The decision a dispatch follows from: the admitted symptom, the
      // previous attempt's outcome, or the adopted replica.
      parent = LatestOf(nodes, index,
                        {TraceEventKind::kSymptom,
                         TraceEventKind::kResultDeliver,
                         TraceEventKind::kResultLost, TraceEventKind::kTimeout,
                         TraceEventKind::kAdopt, TraceEventKind::kIncident});
      break;
    case TraceEventKind::kDispatchDrop:
    case TraceEventKind::kFenceReject:
    case TraceEventKind::kBusyDrop:
    case TraceEventKind::kActionStart:
      parent = LatestOf(nodes, index, {TraceEventKind::kDispatch}, r.attempt);
      if (parent < 0) {
        parent = LatestOf(nodes, index, {TraceEventKind::kDispatch});
      }
      break;
    case TraceEventKind::kActionDone:
      parent =
          LatestOf(nodes, index, {TraceEventKind::kActionStart}, r.attempt);
      break;
    case TraceEventKind::kCure:
      parent = LatestOf(nodes, index, {TraceEventKind::kActionDone});
      break;
    case TraceEventKind::kResultDeliver:
    case TraceEventKind::kResultLost:
      parent =
          LatestOf(nodes, index, {TraceEventKind::kActionDone}, r.attempt);
      break;
    case TraceEventKind::kTimeout:
      parent = LatestOf(nodes, index, {TraceEventKind::kDispatch}, r.attempt);
      break;
    default:
      break;
  }
  return parent >= 0 ? parent : index - 1;
}

}  // namespace

TraceDag BuildTraceDag(const std::vector<TraceRecord>& records) {
  TraceDag dag;
  std::unordered_map<TraceId, std::size_t> index_of;
  for (const TraceRecord& record : records) {
    if (record.trace_id == kNoTrace) {
      dag.global_events.push_back(record);
      continue;
    }
    const auto [it, inserted] =
        index_of.try_emplace(record.trace_id, dag.processes.size());
    if (inserted) {
      TraceProcess process;
      process.trace_id = record.trace_id;
      process.machine = record.machine;
      process.start = record.time;
      dag.processes.push_back(std::move(process));
    }
    TraceProcess& process = dag.processes[it->second];
    TraceDagNode node;
    node.record = record;
    node.orphan = IsOrphanKind(record.kind);
    if (!process.nodes.empty()) {
      node.parent = ParentOf(process.nodes, record);
    }
    if (record.kind == TraceEventKind::kCure) {
      process.cured = true;
      process.end = record.time;
    } else if (!process.cured) {
      process.end = record.time;
    }
    if (process.machine < 0) process.machine = record.machine;
    process.nodes.push_back(std::move(node));
  }
  return dag;
}

namespace {

// One node line; frozen format (aerctl golden surface).
std::string FormatNode(int index, const TraceDagNode& node) {
  const TraceRecord& r = node.record;
  std::string line = StrFormat(
      "  [%d] t=%lld %s", index, static_cast<long long>(r.time),
      std::string(TraceEventKindName(r.kind)).c_str());
  line += node.parent < 0 ? " root" : StrFormat(" parent=%d", node.parent);
  if (r.node >= 0) line += StrFormat(" node=%d", r.node);
  if (r.attempt >= 0) line += StrFormat(" attempt=%d", r.attempt);
  if (r.action >= 0) line += StrFormat(" action=%d", r.action);
  if (r.epoch != 0) {
    line += StrFormat(" epoch=%llu",
                      static_cast<unsigned long long>(r.epoch));
  }
  if (r.duplicate) line += " dup";
  if (node.orphan) line += " orphan";
  if (!r.detail.empty()) line += " detail=" + r.detail;
  return line + "\n";
}

}  // namespace

std::string FormatTraceDag(const TraceDag& dag) {
  std::string out;
  for (const TraceProcess& process : dag.processes) {
    out += StrFormat(
        "trace %016llx machine=%lld nodes=%llu cured=%d start=%lld "
        "end=%lld\n",
        static_cast<unsigned long long>(process.trace_id),
        static_cast<long long>(process.machine),
        static_cast<unsigned long long>(process.nodes.size()),
        process.cured ? 1 : 0, static_cast<long long>(process.start),
        static_cast<long long>(process.end));
    for (std::size_t i = 0; i < process.nodes.size(); ++i) {
      out += FormatNode(static_cast<int>(i), process.nodes[i]);
    }
  }
  if (!dag.global_events.empty()) {
    out += "global events:\n";
    for (const TraceRecord& r : dag.global_events) {
      std::string line = StrFormat(
          "  t=%lld %s", static_cast<long long>(r.time),
          std::string(TraceEventKindName(r.kind)).c_str());
      if (r.node >= 0) line += StrFormat(" node=%d", r.node);
      if (r.epoch != 0) {
        line += StrFormat(" epoch=%llu",
                          static_cast<unsigned long long>(r.epoch));
      }
      if (!r.detail.empty()) line += " detail=" + r.detail;
      out += line + "\n";
    }
  }
  return out;
}

namespace {

JsonValue RecordToJson(const TraceRecord& r) {
  JsonValue node = JsonValue::Object();
  node.Set("time", JsonValue::Int(r.time));
  node.Set("kind", JsonValue::String(std::string(TraceEventKindName(r.kind))));
  if (r.machine >= 0) node.Set("machine", JsonValue::Int(r.machine));
  if (r.node >= 0) node.Set("node", JsonValue::Int(r.node));
  if (r.attempt >= 0) node.Set("attempt", JsonValue::Int(r.attempt));
  if (r.action >= 0) node.Set("action", JsonValue::Int(r.action));
  if (r.epoch != 0) {
    node.Set("epoch", JsonValue::Int(static_cast<std::int64_t>(r.epoch)));
  }
  if (r.duplicate) node.Set("duplicate", JsonValue::Bool(true));
  if (!r.detail.empty()) node.Set("detail", JsonValue::String(r.detail));
  return node;
}

}  // namespace

JsonValue TraceDagToJson(const TraceDag& dag) {
  JsonValue root = JsonValue::Object();
  JsonValue processes = JsonValue::Array();
  for (const TraceProcess& process : dag.processes) {
    JsonValue p = JsonValue::Object();
    p.Set("trace_id",
          JsonValue::String(StrFormat(
              "%016llx", static_cast<unsigned long long>(process.trace_id))));
    p.Set("machine", JsonValue::Int(process.machine));
    p.Set("start", JsonValue::Int(process.start));
    p.Set("end", JsonValue::Int(process.end));
    p.Set("cured", JsonValue::Bool(process.cured));
    JsonValue nodes = JsonValue::Array();
    for (const TraceDagNode& node : process.nodes) {
      JsonValue n = RecordToJson(node.record);
      n.Set("parent", JsonValue::Int(node.parent));
      if (node.orphan) n.Set("orphan", JsonValue::Bool(true));
      nodes.Append(std::move(n));
    }
    p.Set("nodes", std::move(nodes));
    processes.Append(std::move(p));
  }
  root.Set("processes", std::move(processes));
  JsonValue globals = JsonValue::Array();
  for (const TraceRecord& r : dag.global_events) {
    globals.Append(RecordToJson(r));
  }
  root.Set("global_events", std::move(globals));
  return root;
}

}  // namespace aer::obs
