// Lightweight span tracing for recovery processes and training runs.
//
// A Span covers one unit of work on the simulated timeline: a recovery
// process, one action attempt inside it, or an instantaneous annotation
// (injected fault, breaker transition). Spans carry sim-time timestamps
// (never wall clock — the determinism contract in docs/OBSERVABILITY.md),
// a parent link, an optional machine id and a free-form label used for
// filtering (e.g. the initiating symptom name).
//
// Completed spans land in a bounded ring buffer: the tracer keeps the most
// recent `capacity` finished spans and counts the rest as dropped, so
// long simulations cannot grow memory without bound. All mutation goes
// through one mutex; instrumented call sites hold a `Tracer*` that may be
// null (tracing disabled) and must check before calling.
#ifndef AER_OBS_TRACER_H_
#define AER_OBS_TRACER_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/json_writer.h"
#include "common/mutex.h"
#include "common/sim_time.h"
#include "common/thread_annotations.h"
#include "obs/trace_context.h"

namespace aer::obs {

using SpanId = std::int64_t;  // 0 = no span / no parent
inline constexpr SpanId kNoSpan = 0;

struct SpanEvent {
  SimTime time = 0;
  std::string label;
};

struct Span {
  SpanId id = kNoSpan;
  SpanId parent = kNoSpan;
  std::string name;          // "recovery", "action:REBOOT", "inject:drop"...
  std::string label;         // filter key, e.g. the initiating symptom name
  std::int64_t machine = -1; // -1 = not machine-scoped
  // Distributed trace this span belongs to (kNoTrace = untraced). Dumps
  // render it only when set, so untraced flows keep their byte format.
  TraceId trace_id = kNoTrace;
  SimTime start = 0;
  SimTime end = -1;          // -1 while open
  // Set by Tracer::Snapshot() when `parent` names a span the ring has
  // already evicted (it is neither completed-and-retained nor still open).
  // The dumps render such links as the explicit "(evicted)" sentinel
  // instead of a dangling id that could collide with a live span.
  bool parent_evicted = false;
  std::vector<SpanEvent> events;

  SimTime duration() const { return end >= start ? end - start : 0; }
};

class Tracer {
 public:
  explicit Tracer(std::size_t capacity = 4096);
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Opens a span; ids are assigned sequentially from 1 so same-seed runs
  // produce identical ids.
  SpanId StartSpan(std::string_view name, SimTime start,
                   SpanId parent = kNoSpan);

  // The following are no-ops for unknown (already-closed or never-opened)
  // ids, so call sites need not track span lifetimes precisely.
  void SetLabel(SpanId id, std::string_view label);
  void SetMachine(SpanId id, std::int64_t machine);
  // Tags the span with its distributed trace id (crash dumps and span dumps
  // become filterable by trace).
  void SetTraceId(SpanId id, TraceId trace_id);
  void AddEvent(SpanId id, SimTime time, std::string_view label);
  // Closes the span; `end` is clamped to the span's start so durations are
  // never negative even if an out-of-order event closes it.
  void EndSpan(SpanId id, SimTime end);

  // Zero-duration span, closed immediately (point annotations).
  SpanId Instant(std::string_view name, SimTime time,
                 std::string_view label = {}, SpanId parent = kNoSpan,
                 std::int64_t machine = -1);

  // Completed spans, oldest first (bounded by `capacity`).
  std::vector<Span> Snapshot() const;

  std::int64_t completed_count() const;
  std::int64_t dropped_count() const;
  std::size_t open_count() const;

  // --- Pure helpers over snapshots (deterministic ordering) ---

  // Text dump, one "span ..." line per span plus indented event lines.
  static std::string FormatSpans(const std::vector<Span>& spans);
  static JsonValue SpansToJson(const std::vector<Span>& spans);
  // Spans whose label equals `label` (e.g. filter by error/symptom name).
  static std::vector<Span> FilterByLabel(const std::vector<Span>& spans,
                                         std::string_view label);
  // The n longest spans, ties broken by ascending id; when `name_filter` is
  // non-empty only spans with that exact name compete.
  static std::vector<Span> TopSlowest(const std::vector<Span>& spans,
                                      std::size_t n,
                                      std::string_view name_filter = {});

 private:
  mutable Mutex mu_;
  const std::size_t capacity_;
  SpanId next_id_ AER_GUARDED_BY(mu_) = 1;
  std::map<SpanId, Span> open_ AER_GUARDED_BY(mu_);
  // Completed spans, ring_next_ = oldest slot once the ring has wrapped.
  std::vector<Span> ring_ AER_GUARDED_BY(mu_);
  std::size_t ring_next_ AER_GUARDED_BY(mu_) = 0;
  std::int64_t completed_ AER_GUARDED_BY(mu_) = 0;
  std::int64_t dropped_ AER_GUARDED_BY(mu_) = 0;

  void FinishLocked(Span span, SimTime end) AER_REQUIRES(mu_);
};

}  // namespace aer::obs

#endif  // AER_OBS_TRACER_H_
