// Critical-path attribution: where did each cure's latency go?
//
// AnalyzeCriticalPaths walks one trace's records with a monotonic time
// cursor from the first incident to the cure and classifies every instant of
// [start, end) into exactly one named stage — so per-stage durations sum
// EXACTLY to the end-to-end sim-time latency, with no gaps and no double
// counting (duplicate-flagged hops and stale attempts never advance the
// cursor). Control-plane waits are overlaid with the global leadership
// timeline: sub-intervals with no leaseholder become `election_wait`, and
// the span between the issuing coordinator's crash and the adopting leader's
// re-dispatch becomes `takeover_gap`.
//
// The stage catalog is FROZEN, like the metric catalog: every name wrapped
// in AER_TRACE_STAGE below must appear as a `stage:<name>` token in
// docs/OBSERVABILITY.md (enforced by the aer_lint `stage-catalog` rule), and
// each stage has a histogram `aer_trace_stage_<name>_seconds` in the frozen
// metric catalog.
#ifndef AER_OBS_CRITICAL_PATH_H_
#define AER_OBS_CRITICAL_PATH_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/sim_time.h"
#include "obs/trace_collector.h"
#include "obs/trace_context.h"

// Marks a critical-path stage name registration for the aer_lint
// `stage-catalog` rule: every name passed through this macro must appear in
// the docs/OBSERVABILITY.md stage catalog as `stage:<name>`.
#define AER_TRACE_STAGE(name) name

namespace aer::obs {

class MetricsRegistry;

// The frozen stage vocabulary. Values are the export encoding: append-only,
// never renumber.
enum class TraceStage : int {
  kDetect = 0,           // incident injected → symptom admitted by a leader
  kElectionWait = 1,     // any wait spent with no leaseholder
  kDispatchQueue = 2,    // symptom admitted → action dispatched
  kFenceAdmit = 3,       // machine-side fence admission (zero-width marker)
  kDispatchTransit = 4,  // dispatch on the wire → machine starts executing
  kActionExec = 5,       // machine executing the repair action
  kResultTransit = 6,    // action finished → result back at the issuer
  kTimeoutWait = 7,      // failed/lost attempt → next dispatch
  kTakeoverGap = 8,      // issuer crashed → adopting leader re-dispatches
};

inline constexpr int kNumTraceStages = 9;

std::string_view TraceStageName(TraceStage stage);

// "aer_trace_stage_<name>_seconds" — the per-stage histogram name.
std::string TraceStageMetricName(TraceStage stage);

// One contiguous attributed interval [from, to) of a process's lifetime.
// fence_admit markers are the only zero-width (from == to) segments.
struct StageSegment {
  TraceStage stage = TraceStage::kDetect;
  SimTime from = 0;
  SimTime to = 0;
};

struct CriticalPath {
  TraceId trace_id = kNoTrace;
  std::int64_t machine = -1;
  SimTime start = 0;
  SimTime end = 0;
  bool cured = false;
  int attempts = 0;  // dispatches on the critical path
  // Per-stage totals; for cured processes these sum to exactly end - start.
  std::array<SimTime, kNumTraceStages> stage_seconds{};
  // The attributed timeline, in order; non-zero-width segments partition
  // [start, end).
  std::vector<StageSegment> segments;

  SimTime total_seconds() const {
    SimTime total = 0;
    for (const SimTime s : stage_seconds) total += s;
    return total;
  }
};

// One CriticalPath per traced process in `records` (collector snapshot
// order). Uncured processes get the attribution up to their last on-path
// event with cured == false.
std::vector<CriticalPath> AnalyzeCriticalPaths(
    const std::vector<TraceRecord>& records);

// Publishes aer_trace_end_to_end_seconds plus one observation per stage
// that appears on each cured path into the per-stage histograms.
void PublishCriticalPathMetrics(MetricsRegistry& registry,
                                const std::vector<CriticalPath>& paths);

// Deterministic plain-text rendering (aerctl golden surface).
std::string FormatCriticalPaths(const std::vector<CriticalPath>& paths);

}  // namespace aer::obs

#endif  // AER_OBS_CRITICAL_PATH_H_
