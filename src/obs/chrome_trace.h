// Chrome trace-event exporter: renders a stitched trace DAG plus its
// critical-path attribution as the Trace Event Format JSON that
// chrome://tracing and Perfetto load directly.
//
// Mapping: one "process" (pid) per recovery trace; tid 0 carries the
// critical-path stage segments as complete ("X") events, tid 1 carries the
// raw causal records as instant ("i") events. Sim time is exported as
// microseconds (1 sim second = 1e6 ts units) so second-granularity stages
// render with visible width. Output is deterministic: byte-identical for
// the same record stream (aerctl golden surface).
#ifndef AER_OBS_CHROME_TRACE_H_
#define AER_OBS_CHROME_TRACE_H_

#include <string>
#include <vector>

#include "obs/critical_path.h"
#include "obs/trace_dag.h"

namespace aer::obs {

std::string ChromeTraceJson(const TraceDag& dag,
                            const std::vector<CriticalPath>& paths);

}  // namespace aer::obs

#endif  // AER_OBS_CHROME_TRACE_H_
