// Stitching flat TraceRecords into per-process causal DAGs.
//
// BuildTraceDag groups a collector snapshot by trace id (in order of each
// trace's first record) and assigns every record a parent edge by frozen,
// purely positional rules: a node's parent is always an earlier node of the
// same trace, so the result is acyclic by construction and byte-identical
// for any producer thread/shard count (the input order is already
// canonicalized by TraceCollector). Loss events (dropped dispatches, lost
// results, dropped messages) are marked `orphan`: the causal chain ends
// there and the next progress hangs off an earlier node.
//
// Records with trace_id == kNoTrace (leadership and node-lifecycle events)
// are kept aside as `global_events`; the critical-path analyzer overlays
// them onto every process.
#ifndef AER_OBS_TRACE_DAG_H_
#define AER_OBS_TRACE_DAG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/json_writer.h"
#include "common/sim_time.h"
#include "obs/trace_collector.h"
#include "obs/trace_context.h"

namespace aer::obs {

struct TraceDagNode {
  TraceRecord record;
  // Index of the parent node within the owning process, -1 for the root.
  // Invariant: parent < own index (acyclicity).
  int parent = -1;
  // True for loss events: this node has no causal descendants.
  bool orphan = false;
};

// One recovery process: every record sharing a trace id, in canonical
// (collector) order. nodes[0] is the root.
struct TraceProcess {
  TraceId trace_id = kNoTrace;
  std::int64_t machine = -1;
  SimTime start = 0;  // first record's time
  SimTime end = 0;    // cure time if cured, else last record's time
  bool cured = false;
  std::vector<TraceDagNode> nodes;
};

struct TraceDag {
  // Ordered by each process's first appearance in the record stream.
  std::vector<TraceProcess> processes;
  // trace_id == kNoTrace records, in stream order.
  std::vector<TraceRecord> global_events;
};

TraceDag BuildTraceDag(const std::vector<TraceRecord>& records);

// Deterministic plain-text rendering (one process block per trace, node
// lines indented). Part of the aerctl golden surface.
std::string FormatTraceDag(const TraceDag& dag);

// Deterministic JSON rendering: {processes: [...], global_events: [...]}.
JsonValue TraceDagToJson(const TraceDag& dag);

}  // namespace aer::obs

#endif  // AER_OBS_TRACE_DAG_H_
