#include "obs/trace_collector.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "obs/metrics.h"

namespace aer::obs {

std::string_view TraceEventKindName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kIncident: return "incident";
    case TraceEventKind::kSymptom: return "symptom";
    case TraceEventKind::kDispatch: return "dispatch";
    case TraceEventKind::kDispatchDrop: return "dispatch_drop";
    case TraceEventKind::kFenceReject: return "fence_reject";
    case TraceEventKind::kBusyDrop: return "busy_drop";
    case TraceEventKind::kActionStart: return "action_start";
    case TraceEventKind::kActionDone: return "action_done";
    case TraceEventKind::kCure: return "cure";
    case TraceEventKind::kResultDeliver: return "result_deliver";
    case TraceEventKind::kResultLost: return "result_lost";
    case TraceEventKind::kTimeout: return "timeout";
    case TraceEventKind::kAdopt: return "adopt";
    case TraceEventKind::kMessageDrop: return "message_drop";
    case TraceEventKind::kLeaderElected: return "leader_elected";
    case TraceEventKind::kLeaderLost: return "leader_lost";
    case TraceEventKind::kNodeCrash: return "node_crash";
    case TraceEventKind::kNodeRestart: return "node_restart";
  }
  return "unknown";
}

TraceCollector::TraceCollector(TraceCollectorConfig config)
    : config_(config) {
  AER_CHECK_GT(config_.capacity, 0u);
}

void TraceCollector::SetMetrics(MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    sampled_metric_ = nullptr;
    dropped_metric_ = nullptr;
    return;
  }
  sampled_metric_ = &metrics->GetCounter("aer_trace_sampled_total");
  dropped_metric_ = &metrics->GetCounter("aer_trace_dropped_total");
}

bool TraceCollector::Sampled(TraceId id) const {
  return id == kNoTrace || SampleTrace(id, config_.sample_probability);
}

void TraceCollector::AddLocked(TraceRecord record) {
  if (!Sampled(record.trace_id)) {
    ++dropped_;
    if (dropped_metric_) dropped_metric_->Inc();
    return;
  }
  record.seq = next_seq_++;
  ring_.push_back(std::move(record));
  ++recorded_;
  if (sampled_metric_) sampled_metric_->Inc();
  if (ring_.size() > config_.capacity) {
    ring_.pop_front();
    ++dropped_;
    if (dropped_metric_) dropped_metric_->Inc();
  }
}

void TraceCollector::Record(TraceRecord record) {
  MutexLock lock(mu_);
  AddLocked(std::move(record));
}

void TraceCollector::MergeShards(std::vector<std::vector<TraceRecord>> shards) {
  // Concatenate in shard order, then stable-sort by (time, machine). Each
  // machine lives in exactly one shard and records per machine are appended
  // in time order, so every (time, machine) tie group arrives from a single
  // shard in a thread-independent order — the stable sort therefore yields
  // the same byte stream for any shard count (fleet num_shards() is
  // config-pure) and any thread assignment.
  std::vector<TraceRecord> merged;
  std::size_t total = 0;
  for (const auto& shard : shards) total += shard.size();
  merged.reserve(total);
  for (auto& shard : shards) {
    for (auto& record : shard) merged.push_back(std::move(record));
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const TraceRecord& a, const TraceRecord& b) {
                     if (a.time != b.time) return a.time < b.time;
                     return a.machine < b.machine;
                   });
  MutexLock lock(mu_);
  for (auto& record : merged) AddLocked(std::move(record));
}

std::vector<TraceRecord> TraceCollector::Snapshot() const {
  MutexLock lock(mu_);
  return {ring_.begin(), ring_.end()};
}

std::int64_t TraceCollector::recorded_count() const {
  MutexLock lock(mu_);
  return recorded_;
}

std::int64_t TraceCollector::dropped_count() const {
  MutexLock lock(mu_);
  return dropped_;
}

}  // namespace aer::obs
