#include "obs/metrics.h"

#include <utility>

#include "common/check.h"
#include "common/string_util.h"

namespace aer::obs {
namespace {

const char* KindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
    case MetricKind::kStat:
      return "stat";
  }
  return "unknown";
}

std::string FormatDouble(double v) { return StrFormat("%.17g", v); }

}  // namespace

bool IsValidMetricName(std::string_view name) {
  if (name.empty()) return false;
  if (name.front() < 'a' || name.front() > 'z') return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_';
    if (!ok) return false;
  }
  return true;
}

std::string EscapeLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

MetricsRegistry::Entry& MetricsRegistry::GetOrCreate(std::string_view name,
                                                     MetricKind kind) {
  AER_CHECK(IsValidMetricName(name))
      << "metric name must match [a-z][a-z0-9_]*: \"" << name << "\"";
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    auto entry = std::make_unique<Entry>();
    entry->kind = kind;
    it = entries_.emplace(std::string(name), std::move(entry)).first;
  } else {
    AER_CHECK(it->second->kind == kind)
        << "metric \"" << name << "\" already registered as "
        << KindName(it->second->kind) << ", requested as " << KindName(kind);
  }
  return *it->second;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  MutexLock lock(mu_);
  return GetOrCreate(name, MetricKind::kCounter).counter;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name, bool volatile_metric) {
  MutexLock lock(mu_);
  Entry& entry = GetOrCreate(name, MetricKind::kGauge);
  entry.volatile_metric = entry.volatile_metric || volatile_metric;
  return entry.gauge;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name, double base,
                                         double growth, int bucket_count) {
  MutexLock lock(mu_);
  Entry& entry = GetOrCreate(name, MetricKind::kHistogram);
  if (entry.histogram == nullptr) {
    entry.histogram = std::make_unique<Histogram>(base, growth, bucket_count);
  } else {
    const LogHistogram snapshot = entry.histogram->Snapshot();
    AER_CHECK(snapshot.base() == base && snapshot.growth() == growth &&
              snapshot.bucket_count() == bucket_count + 1)
        << "histogram \"" << name << "\" re-registered with a different "
        << "geometry (" << base << ", " << growth << ", " << bucket_count
        << ")";
  }
  return *entry.histogram;
}

StatMetric& MetricsRegistry::GetStat(std::string_view name) {
  MutexLock lock(mu_);
  Entry& entry = GetOrCreate(name, MetricKind::kStat);
  if (entry.stat == nullptr) entry.stat = std::make_unique<StatMetric>();
  return *entry.stat;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MutexLock lock(mu_);
  MetricsSnapshot snapshot;
  for (const auto& [name, entry] : entries_) {
    switch (entry->kind) {
      case MetricKind::kCounter:
        snapshot.counters.push_back({name, entry->counter.value()});
        break;
      case MetricKind::kGauge:
        snapshot.gauges.push_back(
            {name, entry->gauge.value(), entry->volatile_metric});
        break;
      case MetricKind::kHistogram:
        snapshot.histograms.push_back({name, entry->histogram->Snapshot()});
        break;
      case MetricKind::kStat:
        snapshot.stats.push_back({name, entry->stat->Snapshot()});
        break;
    }
  }
  return snapshot;
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other) {
  AER_CHECK(this != &other) << "cannot merge a registry into itself";
  const MetricsSnapshot snapshot = other.Snapshot();
  for (const auto& c : snapshot.counters) GetCounter(c.name).Inc(c.value);
  for (const auto& g : snapshot.gauges) {
    GetGauge(g.name, g.volatile_metric).Set(g.value);
  }
  for (const auto& h : snapshot.histograms) {
    GetHistogram(h.name, h.histogram.base(), h.histogram.growth(),
                 h.histogram.bucket_count() - 1)
        .MergeFrom(h.histogram);
  }
  for (const auto& s : snapshot.stats) GetStat(s.name).MergeFrom(s.stat);
}

std::string MetricsRegistry::ExportText(const ExportOptions& options) const {
  MutexLock lock(mu_);
  std::string out;
  for (const auto& [name, entry] : entries_) {
    if (entry->volatile_metric && !options.include_volatile) continue;
    switch (entry->kind) {
      case MetricKind::kCounter:
        out += "# TYPE " + name + " counter\n";
        out += name + " " +
               StrFormat("%lld",
                         static_cast<long long>(entry->counter.value())) +
               "\n";
        break;
      case MetricKind::kGauge:
        out += "# TYPE " + name + " gauge\n";
        out += name + " " + FormatDouble(entry->gauge.value()) + "\n";
        break;
      case MetricKind::kHistogram: {
        const LogHistogram h = entry->histogram->Snapshot();
        out += "# TYPE " + name + " histogram\n";
        std::int64_t cum = 0;
        for (int i = 0; i < h.bucket_count(); ++i) {
          if (h.bucket(i) == 0) continue;
          cum += h.bucket(i);
          const bool overflow = i + 1 >= h.bucket_count();
          const std::string le =
              overflow ? std::string("+Inf") : FormatDouble(h.bucket_lower(i + 1));
          out += name + "_bucket{le=\"" + le + "\"} " +
                 StrFormat("%lld", static_cast<long long>(cum)) + "\n";
        }
        out += name + "_bucket{le=\"+Inf\"} " +
               StrFormat("%lld", static_cast<long long>(h.total_count())) +
               "\n";
        out += name + "_count " +
               StrFormat("%lld", static_cast<long long>(h.total_count())) +
               "\n";
        break;
      }
      case MetricKind::kStat: {
        const RunningStat s = entry->stat->Snapshot();
        out += "# TYPE " + name + " summary\n";
        out += name + "_count " +
               StrFormat("%lld", static_cast<long long>(s.count())) + "\n";
        out += name + "_sum " + FormatDouble(s.sum()) + "\n";
        out += name + "_min " + FormatDouble(s.min()) + "\n";
        out += name + "_max " + FormatDouble(s.max()) + "\n";
        out += name + "_mean " + FormatDouble(s.mean()) + "\n";
        break;
      }
    }
  }
  return out;
}

JsonValue MetricsRegistry::ExportJson(const ExportOptions& options) const {
  MutexLock lock(mu_);
  JsonValue root = JsonValue::Object();
  for (const auto& [name, entry] : entries_) {
    if (entry->volatile_metric && !options.include_volatile) continue;
    JsonValue value = JsonValue::Object();
    switch (entry->kind) {
      case MetricKind::kCounter:
        value.Set("type", JsonValue::String("counter"));
        value.Set("value", JsonValue::Int(entry->counter.value()));
        break;
      case MetricKind::kGauge:
        value.Set("type", JsonValue::String("gauge"));
        if (entry->volatile_metric) {
          value.Set("volatile", JsonValue::Bool(true));
        }
        value.Set("value", JsonValue::Number(entry->gauge.value()));
        break;
      case MetricKind::kHistogram: {
        const LogHistogram h = entry->histogram->Snapshot();
        value.Set("type", JsonValue::String("histogram"));
        value.Set("count", JsonValue::Int(h.total_count()));
        JsonValue buckets = JsonValue::Array();
        for (int i = 0; i < h.bucket_count(); ++i) {
          if (h.bucket(i) == 0) continue;
          JsonValue bucket = JsonValue::Object();
          bucket.Set("lower", JsonValue::Number(h.bucket_lower(i)));
          bucket.Set("count", JsonValue::Int(h.bucket(i)));
          buckets.Append(std::move(bucket));
        }
        value.Set("buckets", std::move(buckets));
        if (h.total_count() > 0) {
          value.Set("p50", JsonValue::Number(h.ApproxQuantile(0.5)));
          value.Set("p90", JsonValue::Number(h.ApproxQuantile(0.9)));
          value.Set("p99", JsonValue::Number(h.ApproxQuantile(0.99)));
        }
        break;
      }
      case MetricKind::kStat: {
        const RunningStat s = entry->stat->Snapshot();
        value.Set("type", JsonValue::String("stat"));
        value.Set("count", JsonValue::Int(s.count()));
        value.Set("sum", JsonValue::Number(s.sum()));
        value.Set("mean", JsonValue::Number(s.mean()));
        value.Set("min", JsonValue::Number(s.min()));
        value.Set("max", JsonValue::Number(s.max()));
        break;
      }
    }
    root.Set(name, std::move(value));
  }
  return root;
}

std::vector<std::pair<std::string, std::int64_t>>
MetricsRegistry::CounterValues() const {
  MutexLock lock(mu_);
  std::vector<std::pair<std::string, std::int64_t>> values;
  for (const auto& [name, entry] : entries_) {
    if (entry->kind != MetricKind::kCounter) continue;
    values.emplace_back(name, entry->counter.value());
  }
  return values;
}

std::vector<std::string> MetricsRegistry::Names() const {
  MutexLock lock(mu_);
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;
}

std::size_t MetricsRegistry::size() const {
  MutexLock lock(mu_);
  return entries_.size();
}

}  // namespace aer::obs
