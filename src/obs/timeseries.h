// Time-series telemetry: windowed deltas of the metrics registry.
//
// A TimeSeriesRecorder watches one MetricsRegistry and slices its evolution
// into half-open windows [start, end) on a configurable cadence. The
// position axis is caller-defined — the injection harness advances it with
// sim time, the training bench with cumulative episode counts — so the same
// recorder covers both "per simulated hour" and "per N episodes" series.
//
// Windows hold *deltas*, not absolutes: counter increments, histogram/stat
// observation-count increments, and the gauge values at close. Closed
// windows live in a bounded ring (oldest evicted first), so a long run keeps
// a recent, fixed-memory trend instead of an unbounded log.
//
// Cadence semantics: AdvanceTo(p) closes the open window once p reaches the
// next multiple of `window_width`. If p jumps several widths at once the
// window closes *late* — one window spanning [start, floor(p / width) *
// width) — rather than emitting a run of empty filler windows. Every window
// therefore records its actual start and end; consumers must read them
// instead of assuming a uniform grid. Finish(p) closes the in-progress
// window at exactly p (a partial window) at end of run.
//
// Determinism: positions come from sim time or episode counts, and deltas
// from deterministic metrics, so same-seed runs export byte-identical
// series (volatile gauges are excluded unless `include_volatile`). The
// recorder itself registers two meta counters, aer_ts_windows_total and
// aer_ts_windows_dropped_total; they are bumped after the closing snapshot,
// so their own increments show up in the *next* window's deltas.
#ifndef AER_OBS_TIMESERIES_H_
#define AER_OBS_TIMESERIES_H_

#include <cstdint>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "common/json_writer.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"

namespace aer::obs {

struct TimeSeriesConfig {
  // Window width in position units (sim seconds, episodes, ...).
  std::int64_t window_width = 3600;
  // Maximum closed windows retained; the oldest is evicted beyond this.
  std::size_t capacity = 256;
  // When false (default), volatile (wall-clock-derived) gauges are omitted
  // so exports stay a pure function of (code, seed, scale).
  bool include_volatile = false;
  // Static labels prepended to every exported sample's label set (job,
  // cluster, scenario, ...). Values may contain arbitrary bytes; the text
  // exporter escapes them per the Prometheus exposition format.
  std::vector<std::pair<std::string, std::string>> labels;
};

// One closed window. Delta lists hold only metrics that changed during the
// window; gauge_values holds every (non-volatile) gauge's value at close.
// All lists are sorted by metric name.
struct TimeSeriesWindow {
  std::int64_t index = 0;  // sequence number over all closed windows
  std::int64_t start = 0;  // inclusive position where the window opened
  std::int64_t end = 0;    // exclusive position where it closed
  std::vector<std::pair<std::string, std::int64_t>> counter_deltas;
  std::vector<std::pair<std::string, double>> gauge_values;
  // Histogram/stat observation-count increments, merged into one list.
  std::vector<std::pair<std::string, std::int64_t>> observation_deltas;
};

class TimeSeriesRecorder {
 public:
  // Takes a baseline snapshot immediately: the first window's deltas cover
  // only changes made after construction. The registry must outlive the
  // recorder.
  TimeSeriesRecorder(MetricsRegistry& registry, TimeSeriesConfig config);

  TimeSeriesRecorder(const TimeSeriesRecorder&) = delete;
  TimeSeriesRecorder& operator=(const TimeSeriesRecorder&) = delete;

  // Moves the position forward (monotonically; CHECK-fails on regress) and
  // closes the open window if the cadence boundary was crossed.
  void AdvanceTo(std::int64_t position);

  // Closes the in-progress window at exactly `position`, even mid-cadence.
  // No-op for an empty partial window at a boundary. Call at end of run so
  // the tail of the series is not lost.
  void Finish(std::int64_t position);

  // Copy of the ring, oldest window first.
  std::vector<TimeSeriesWindow> Windows() const;

  std::int64_t windows_closed() const;
  std::int64_t windows_dropped() const;
  const TimeSeriesConfig& config() const { return config_; }

  // Prometheus-style exposition: per window, one `# window` comment line
  // followed by sample lines
  //   <name>_delta{window="i",start="s",end="e"} <int>         (counters)
  //   <name>{window="i",start="s",end="e"} <double>            (gauges)
  //   <name>_observations{window="i",start="s",end="e"} <int>  (histograms,
  //                                                             stats)
  // Deterministic: windows in ring order, names sorted, doubles %.17g.
  std::string ExportText() const;

  // The same content as JSON: {window_width, capacity, closed, dropped,
  // windows: [{index, start, end, counters, gauges, observations}]}.
  JsonValue ExportJson() const;

 private:
  void CloseWindowLocked(std::int64_t end) AER_REQUIRES(mu_);

  MetricsRegistry& registry_;
  const TimeSeriesConfig config_;

  mutable Mutex mu_;
  // Highest position seen.
  std::int64_t position_ AER_GUARDED_BY(mu_) = 0;
  // Open window's start.
  std::int64_t window_start_ AER_GUARDED_BY(mu_) = 0;
  // == windows closed so far.
  std::int64_t next_index_ AER_GUARDED_BY(mu_) = 0;
  std::int64_t dropped_ AER_GUARDED_BY(mu_) = 0;
  // Registry snapshot at the last close.
  MetricsSnapshot last_ AER_GUARDED_BY(mu_);
  std::deque<TimeSeriesWindow> ring_ AER_GUARDED_BY(mu_);
};

}  // namespace aer::obs

#endif  // AER_OBS_TIMESERIES_H_
