#include "obs/timeseries.h"

#include <map>

#include "common/check.h"
#include "common/string_util.h"

namespace aer::obs {
namespace {

// Sorted-by-name diff of two counter sections; emits nonzero deltas only.
// Names only ever get added to a registry, so `prev` is a subset of `now`.
std::vector<std::pair<std::string, std::int64_t>> DiffCounters(
    const std::vector<MetricsSnapshot::CounterValue>& prev,
    const std::vector<MetricsSnapshot::CounterValue>& now) {
  std::vector<std::pair<std::string, std::int64_t>> deltas;
  std::size_t p = 0;
  for (const auto& c : now) {
    while (p < prev.size() && prev[p].name < c.name) ++p;
    const std::int64_t before =
        (p < prev.size() && prev[p].name == c.name) ? prev[p].value : 0;
    const std::int64_t delta = c.value - before;
    if (delta != 0) deltas.emplace_back(c.name, delta);
  }
  return deltas;
}

}  // namespace

TimeSeriesRecorder::TimeSeriesRecorder(MetricsRegistry& registry,
                                       TimeSeriesConfig config)
    : registry_(registry), config_(config) {
  AER_CHECK_GT(config_.window_width, 0);
  AER_CHECK_GT(config_.capacity, 0u);
  // Register the meta counters up front so they appear (as zero) in the
  // catalog even before the first eviction, then take the baseline.
  registry_.GetCounter("aer_ts_windows_total");
  registry_.GetCounter("aer_ts_windows_dropped_total");
  // Constructors are analyzed like any function; the baseline write to the
  // guarded `last_` takes the lock even though no other thread can see the
  // recorder yet.
  MutexLock lock(mu_);
  last_ = registry_.Snapshot();
}

void TimeSeriesRecorder::AdvanceTo(std::int64_t position) {
  MutexLock lock(mu_);
  AER_CHECK_GE(position, position_) << "time-series position went backwards";
  position_ = position;
  const std::int64_t boundary =
      (position / config_.window_width) * config_.window_width;
  if (boundary > window_start_) CloseWindowLocked(boundary);
}

void TimeSeriesRecorder::Finish(std::int64_t position) {
  MutexLock lock(mu_);
  AER_CHECK_GE(position, position_) << "time-series position went backwards";
  position_ = position;
  if (position > window_start_) CloseWindowLocked(position);
}

void TimeSeriesRecorder::CloseWindowLocked(std::int64_t end) {
  MetricsSnapshot now = registry_.Snapshot();

  TimeSeriesWindow window;
  window.index = next_index_++;
  window.start = window_start_;
  window.end = end;
  window.counter_deltas = DiffCounters(last_.counters, now.counters);

  for (const auto& g : now.gauges) {
    if (g.volatile_metric && !config_.include_volatile) continue;
    window.gauge_values.emplace_back(g.name, g.value);
  }

  // Histogram and stat observation counts, merged into one sorted list. A
  // map keeps the merge simple; names are unique across kinds.
  std::map<std::string, std::int64_t> before;
  for (const auto& h : last_.histograms) {
    before[h.name] = h.histogram.total_count();
  }
  for (const auto& s : last_.stats) before[s.name] = s.stat.count();
  std::map<std::string, std::int64_t> counts;
  for (const auto& h : now.histograms) {
    counts[h.name] = h.histogram.total_count();
  }
  for (const auto& s : now.stats) counts[s.name] = s.stat.count();
  for (const auto& [name, count] : counts) {
    const auto it = before.find(name);
    const std::int64_t delta = count - (it == before.end() ? 0 : it->second);
    if (delta != 0) window.observation_deltas.emplace_back(name, delta);
  }

  ring_.push_back(std::move(window));
  if (ring_.size() > config_.capacity) {
    ring_.pop_front();
    ++dropped_;
    registry_.GetCounter("aer_ts_windows_dropped_total").Inc();
  }
  // Bumped after the snapshot, so the meta counters' own increments land in
  // the next window's deltas (see header).
  registry_.GetCounter("aer_ts_windows_total").Inc();

  last_ = std::move(now);
  window_start_ = end;
}

std::vector<TimeSeriesWindow> TimeSeriesRecorder::Windows() const {
  MutexLock lock(mu_);
  return {ring_.begin(), ring_.end()};
}

std::int64_t TimeSeriesRecorder::windows_closed() const {
  MutexLock lock(mu_);
  return next_index_;
}

std::int64_t TimeSeriesRecorder::windows_dropped() const {
  MutexLock lock(mu_);
  return dropped_;
}

std::string TimeSeriesRecorder::ExportText() const {
  MutexLock lock(mu_);
  std::string out = StrFormat(
      "# timeseries window_width=%lld capacity=%llu closed=%lld "
      "dropped=%lld\n",
      static_cast<long long>(config_.window_width),
      static_cast<unsigned long long>(config_.capacity),
      static_cast<long long>(next_index_), static_cast<long long>(dropped_));
  // Static labels first, then the window coordinates. Values go through the
  // exposition escaper — a label like job="a\"b" must not break the line
  // grammar for scrapers.
  std::string static_labels;
  for (const auto& [key, value] : config_.labels) {
    static_labels += key + "=\"" + EscapeLabelValue(value) + "\",";
  }
  for (const TimeSeriesWindow& w : ring_) {
    const std::string labels = StrFormat(
        "{%swindow=\"%lld\",start=\"%lld\",end=\"%lld\"}",
        static_labels.c_str(), static_cast<long long>(w.index),
        static_cast<long long>(w.start), static_cast<long long>(w.end));
    out += StrFormat("# window index=%lld start=%lld end=%lld\n",
                     static_cast<long long>(w.index),
                     static_cast<long long>(w.start),
                     static_cast<long long>(w.end));
    for (const auto& [name, delta] : w.counter_deltas) {
      out += name + "_delta" + labels + " " +
             StrFormat("%lld", static_cast<long long>(delta)) + "\n";
    }
    for (const auto& [name, value] : w.gauge_values) {
      out += name + labels + " " + StrFormat("%.17g", value) + "\n";
    }
    for (const auto& [name, delta] : w.observation_deltas) {
      out += name + "_observations" + labels + " " +
             StrFormat("%lld", static_cast<long long>(delta)) + "\n";
    }
  }
  return out;
}

JsonValue TimeSeriesRecorder::ExportJson() const {
  MutexLock lock(mu_);
  JsonValue root = JsonValue::Object();
  root.Set("window_width", JsonValue::Int(config_.window_width));
  root.Set("capacity",
           JsonValue::Int(static_cast<std::int64_t>(config_.capacity)));
  root.Set("closed", JsonValue::Int(next_index_));
  root.Set("dropped", JsonValue::Int(dropped_));
  if (!config_.labels.empty()) {
    JsonValue labels = JsonValue::Object();
    for (const auto& [key, value] : config_.labels) {
      labels.Set(key, JsonValue::String(value));
    }
    root.Set("labels", std::move(labels));
  }
  JsonValue windows = JsonValue::Array();
  for (const TimeSeriesWindow& w : ring_) {
    JsonValue window = JsonValue::Object();
    window.Set("index", JsonValue::Int(w.index));
    window.Set("start", JsonValue::Int(w.start));
    window.Set("end", JsonValue::Int(w.end));
    JsonValue counters = JsonValue::Object();
    for (const auto& [name, delta] : w.counter_deltas) {
      counters.Set(name, JsonValue::Int(delta));
    }
    window.Set("counters", std::move(counters));
    JsonValue gauges = JsonValue::Object();
    for (const auto& [name, value] : w.gauge_values) {
      gauges.Set(name, JsonValue::Number(value));
    }
    window.Set("gauges", std::move(gauges));
    JsonValue observations = JsonValue::Object();
    for (const auto& [name, delta] : w.observation_deltas) {
      observations.Set(name, JsonValue::Int(delta));
    }
    window.Set("observations", std::move(observations));
    windows.Append(std::move(window));
  }
  root.Set("windows", std::move(windows));
  return root;
}

}  // namespace aer::obs
