// Process-wide metrics: a registry of named counters, gauges, histograms and
// running stats, built on the accumulators in common/stats.h.
//
// Design points (docs/OBSERVABILITY.md has the full contract):
//  - Lookup (`GetCounter` etc.) takes the registry mutex; instrumented hot
//    paths cache the returned reference once and then update lock-free
//    (counters/gauges are atomics) or under a per-metric mutex (histograms
//    and stats). References stay valid for the registry's lifetime.
//  - Exports are deterministic: metrics are emitted in name order, doubles
//    with %.17g, so two same-seed runs produce byte-identical snapshots.
//  - Metrics derived from wall-clock time (episodes/sec) are registered as
//    *volatile* gauges; deterministic snapshots exclude them via
//    `ExportOptions::include_volatile = false`.
//  - `MergeFrom` folds a per-worker shard registry into this one (counters
//    add, histograms/stats merge) — the parallel trainer merges shards in
//    catalog order so the result is independent of thread count.
#ifndef AER_OBS_METRICS_H_
#define AER_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/json_writer.h"
#include "common/mutex.h"
#include "common/stats.h"
#include "common/thread_annotations.h"

namespace aer::obs {

// Monotonically increasing integer metric. Lock-free; relaxed ordering is
// enough because counters carry no synchronization duties.
class Counter {
 public:
  void Inc(std::int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

// Last-write-wins double metric.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Mutex-guarded LogHistogram (geometric buckets; see common/stats.h).
class Histogram {
 public:
  Histogram(double base, double growth, int bucket_count)
      : histogram_(base, growth, bucket_count) {}

  void Observe(double x) {
    MutexLock lock(mu_);
    histogram_.Add(x);
  }

  LogHistogram Snapshot() const {
    MutexLock lock(mu_);
    return histogram_;
  }

  void MergeFrom(const LogHistogram& other) {
    MutexLock lock(mu_);
    histogram_.Merge(other);
  }

 private:
  mutable Mutex mu_;
  LogHistogram histogram_ AER_GUARDED_BY(mu_);
};

// Mutex-guarded RunningStat (count/sum/mean/min/max/stddev).
class StatMetric {
 public:
  void Observe(double x) {
    MutexLock lock(mu_);
    stat_.Add(x);
  }

  RunningStat Snapshot() const {
    MutexLock lock(mu_);
    return stat_;
  }

  void MergeFrom(const RunningStat& other) {
    MutexLock lock(mu_);
    stat_.Merge(other);
  }

 private:
  mutable Mutex mu_;
  RunningStat stat_ AER_GUARDED_BY(mu_);
};

enum class MetricKind { kCounter, kGauge, kHistogram, kStat };

// A point-in-time copy of every metric, each section sorted by name — the
// substrate shared by MergeFrom, the TimeSeriesRecorder's windowed deltas,
// and the flight recorder's crash dump.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    std::int64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    double value = 0.0;
    bool volatile_metric = false;
  };
  struct HistogramValue {
    std::string name;
    LogHistogram histogram;
  };
  struct StatValue {
    std::string name;
    RunningStat stat;
  };
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;
  std::vector<StatValue> stats;
};

// Valid metric names match [a-z][a-z0-9_]* — enforced with AER_CHECK so the
// catalog in docs/OBSERVABILITY.md stays greppable and export-safe.
bool IsValidMetricName(std::string_view name);

// Escapes a Prometheus exposition label value: `\` -> `\\`, `"` -> `\"`,
// newline -> `\n` (the format's three mandated escapes). Every exporter
// emitting `key="value"` label pairs must route values through this.
std::string EscapeLabelValue(std::string_view value);

class MetricsRegistry {
 public:
  struct ExportOptions {
    // When false, volatile (wall-clock-derived) metrics are omitted so the
    // snapshot is a pure function of (code, seed, scale).
    bool include_volatile = true;
  };

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Find-or-create. CHECK-fails if `name` is already registered with a
  // different kind (or, for histograms, a different geometry).
  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name, bool volatile_metric = false);
  Histogram& GetHistogram(std::string_view name, double base = 60.0,
                          double growth = 2.0, int bucket_count = 20);
  StatMetric& GetStat(std::string_view name);

  // Copies every metric under the registry mutex (name-sorted; see
  // MetricsSnapshot). The copy is consistent per metric, not across metrics
  // — concurrent writers may land between sections, same as the exports.
  MetricsSnapshot Snapshot() const;

  // Folds a worker shard into this registry: counters add, histograms and
  // stats merge, gauges take the shard's value. Creates missing metrics.
  // Implemented as Snapshot() + apply, so the two registry mutexes are
  // never held together.
  void MergeFrom(const MetricsRegistry& other);

  // Prometheus-style text exposition, sorted by metric name. Histograms emit
  // cumulative non-empty buckets plus "+Inf"; stats emit a summary block.
  std::string ExportText(const ExportOptions& options) const;
  std::string ExportText() const { return ExportText(ExportOptions{}); }

  // json_writer snapshot with the same content (and determinism) as the
  // text export, plus approximate histogram quantiles.
  JsonValue ExportJson(const ExportOptions& options) const;
  JsonValue ExportJson() const { return ExportJson(ExportOptions{}); }

  // Registered metric names in sorted order.
  std::vector<std::string> Names() const;

  // All counters as sorted (name, value) pairs — the compare surface that
  // bench_json mirrors into baseline records for run_all.py --compare.
  std::vector<std::pair<std::string, std::int64_t>> CounterValues() const;

  std::size_t size() const;

 private:
  struct Entry {
    MetricKind kind;
    bool volatile_metric = false;
    Counter counter;                       // kCounter
    Gauge gauge;                           // kGauge
    std::unique_ptr<Histogram> histogram;  // kHistogram
    std::unique_ptr<StatMetric> stat;      // kStat
  };

  // Find-or-create on the entry map; every caller already holds mu_.
  Entry& GetOrCreate(std::string_view name, MetricKind kind)
      AER_REQUIRES(mu_);

  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Entry>, std::less<>> entries_
      AER_GUARDED_BY(mu_);
};

}  // namespace aer::obs

#endif  // AER_OBS_METRICS_H_
