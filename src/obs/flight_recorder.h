// Crash flight recorder: a last-gasp dump of recent observability state.
//
// Once installed, a fatal event — an AER_CHECK failure (via the
// CheckFailureHook in common/check.h) or a fatal signal (SIGSEGV, SIGBUS,
// SIGFPE, SIGILL, SIGABRT) — writes one JSON file containing the most
// recent completed trace spans, a full metrics snapshot, the most recent
// time-series window, and the merged wall-clock profile, then lets the
// process die as it would have. The dump answers "what was the system doing
// right before it fell over" without a debugger or a re-run.
//
// Honesty about signal safety: the dump path allocates and takes the
// tracer/registry mutexes, which is not async-signal-safe. That is the
// standard flight-recorder trade-off — a crash *inside* those locks may
// hang or re-fault instead of dumping, and the reentrancy guard plus the
// re-raised signal make sure the process still terminates. Dumps are
// best-effort diagnostics, never part of any correctness contract.
//
// The dump schema is documented in docs/OBSERVABILITY.md. Test binaries
// install a recorder automatically when AER_FLIGHT_RECORD_DIR is set (see
// tests/test_main.cc); CI uploads the dumps of failed test runs.
#ifndef AER_OBS_FLIGHT_RECORDER_H_
#define AER_OBS_FLIGHT_RECORDER_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/trace_collector.h"
#include "obs/tracer.h"

namespace aer::obs {

struct FlightRecorderConfig {
  // Dump file path. The file is created (truncated) only when a dump
  // actually fires.
  std::string path;
  // Most recent completed spans included in the dump.
  std::size_t max_spans = 64;
  // Most recent causal trace records stitched into the dump's trace DAG.
  std::size_t max_trace_records = 512;
};

// Static-only: there is one process-wide recorder, mirroring the one
// process-wide set of crash hooks.
class FlightRecorder {
 public:
  FlightRecorder() = delete;

  // Installs the recorder: stores the sources (any may be null; non-null
  // ones must outlive the installation), registers the AER_CHECK failure
  // hook and the fatal-signal handlers. A second Install replaces the
  // sources; previously chained signal handlers are not restored until
  // Uninstall.
  static void Install(FlightRecorderConfig config, const Tracer* tracer,
                      const MetricsRegistry* metrics,
                      const TimeSeriesRecorder* timeseries,
                      const TraceCollector* traces = nullptr);

  // Removes the hook and restores the previous signal handlers.
  static void Uninstall();

  // Writes a dump immediately with reason "manual" (tests, debugging).
  // Returns false if nothing is installed or the file cannot be written.
  // Unlike crash dumps this does not consume the once-only guard.
  static bool DumpNow(std::string_view detail);

  static bool installed();
};

}  // namespace aer::obs

#endif  // AER_OBS_FLIGHT_RECORDER_H_
