// TraceCollector: the shared sink for causal trace records.
//
// Every tracing-aware component (control-plane harness, coordinators, the
// machine-side RecoveryManager, fleet shards) appends TraceRecords here; the
// collector owns sampling, bounding, and the byte-identical merge of
// per-shard record streams (same discipline as the fleet ShardMerger: shards
// concatenated in shard order, then a stable sort by time — so the merged
// stream is identical for any thread/shard count).
//
// Records are flat events, not spans: the DAG structure (parent edges,
// orphan annotations) is recomputed deterministically by trace_dag.h from
// the record stream, which keeps the wire/storage format trivial and makes
// the merge order-insensitive.
//
// Sampling: deterministic hash-based head sampling (SampleTrace). The keep
// decision depends only on the trace id, so every participant in a recovery
// process agrees on it — a kept trace is complete, a dropped trace leaves
// nothing. aer_trace_sampled_total / aer_trace_dropped_total count kept and
// sampled-out or ring-evicted records.
#ifndef AER_OBS_TRACE_COLLECTOR_H_
#define AER_OBS_TRACE_COLLECTOR_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/sim_time.h"
#include "common/thread_annotations.h"
#include "obs/trace_context.h"

namespace aer::obs {

class MetricsRegistry;
class Counter;

// Frozen event vocabulary. Values are the wire/JSON encoding: append-only,
// never renumber (docs/OBSERVABILITY.md "Distributed tracing").
enum class TraceEventKind : int {
  kIncident = 0,       // fault injected on a machine (trace root)
  kSymptom = 1,        // symptom admitted by the leaseholder
  kDispatch = 2,       // leader issued an action dispatch
  kDispatchDrop = 3,   // dispatch lost in the network (orphan)
  kFenceReject = 4,    // machine-side fence rejected a stale epoch
  kBusyDrop = 5,       // machine busy executing; dispatch dropped
  kActionStart = 6,    // machine began executing the action
  kActionDone = 7,     // machine finished executing the action
  kCure = 8,           // machine healthy; process ends here
  kResultDeliver = 9,  // action result reached the issuing coordinator
  kResultLost = 10,    // result undeliverable (orphan)
  kTimeout = 11,       // issuer expired the in-flight action
  kAdopt = 12,         // new leader adopted the replicated process
  kMessageDrop = 13,   // traced coordinator message lost (orphan)
  kLeaderElected = 14,  // global: a coordinator became leaseholder
  kLeaderLost = 15,     // global: leaseholder stepped down
  kNodeCrash = 16,      // global: coordinator crashed
  kNodeRestart = 17,    // global: coordinator restarted
};

std::string_view TraceEventKindName(TraceEventKind kind);

// One causal event. Records with trace_id == kNoTrace are global control
// events (leadership, node lifecycle) that the critical-path analyzer
// overlays onto every trace; all others belong to exactly one trace.
struct TraceRecord {
  TraceId trace_id = kNoTrace;
  SimTime time = 0;
  TraceEventKind kind = TraceEventKind::kIncident;
  std::int64_t machine = -1;  // afflicted machine, -1 for global events
  int node = -1;              // coordinator involved, -1 if none
  int attempt = -1;           // 0-based action attempt index, -1 if n/a
  int action = -1;            // RepairAction index, -1 if n/a
  std::uint64_t epoch = 0;    // fencing epoch carried by the hop, 0 if n/a
  bool duplicate = false;     // hop produced by network duplication
  std::string detail;         // free-form annotation (symptom name, ...)
  // Arrival order within the collector; breaks (time, machine) ties in the
  // shard merge. Assigned by the collector, not callers.
  std::uint64_t seq = 0;

  friend bool operator==(const TraceRecord&, const TraceRecord&) = default;
};

struct TraceCollectorConfig {
  // Ring capacity in records; the oldest record is evicted (and counted
  // dropped) beyond this.
  std::size_t capacity = 1 << 16;
  // Head-sampling probability (SampleTrace). 1.0 keeps every trace.
  double sample_probability = 1.0;
};

class TraceCollector {
 public:
  explicit TraceCollector(TraceCollectorConfig config = {});

  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  // Registers aer_trace_sampled_total / aer_trace_dropped_total. Call before
  // recording; nullptr detaches.
  void SetMetrics(MetricsRegistry* metrics);

  // The shared head-sampling decision for `id`. Global records (kNoTrace)
  // are always kept.
  bool Sampled(TraceId id) const;

  // Appends one record (applying sampling and the ring bound). The
  // collector assigns record.seq.
  void Record(TraceRecord record);

  // Merges per-shard record streams: concatenation in shard order, then a
  // stable sort by (time, machine) — byte-identical for any shard-to-thread
  // assignment because each (time, machine) run is produced by exactly one
  // shard in machine-local order. Same discipline as fleet::ShardMerger.
  void MergeShards(std::vector<std::vector<TraceRecord>> shards);

  // Oldest-first copy of the ring.
  std::vector<TraceRecord> Snapshot() const;

  std::int64_t recorded_count() const;
  std::int64_t dropped_count() const;
  const TraceCollectorConfig& config() const { return config_; }

 private:
  void AddLocked(TraceRecord record) AER_REQUIRES(mu_);

  const TraceCollectorConfig config_;
  // Set once before recording starts; read without the lock (counters are
  // internally atomic).
  Counter* sampled_metric_ = nullptr;
  Counter* dropped_metric_ = nullptr;

  mutable Mutex mu_;
  std::deque<TraceRecord> ring_ AER_GUARDED_BY(mu_);
  std::uint64_t next_seq_ AER_GUARDED_BY(mu_) = 1;
  std::int64_t recorded_ AER_GUARDED_BY(mu_) = 0;
  std::int64_t dropped_ AER_GUARDED_BY(mu_) = 0;
};

}  // namespace aer::obs

#endif  // AER_OBS_TRACE_COLLECTOR_H_
