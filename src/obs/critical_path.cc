#include "obs/critical_path.h"

#include <algorithm>
#include <map>
#include <utility>

#include "common/string_util.h"
#include "obs/metrics.h"

namespace aer::obs {

std::string_view TraceStageName(TraceStage stage) {
  switch (stage) {
    case TraceStage::kDetect:
      return AER_TRACE_STAGE("detect");
    case TraceStage::kElectionWait:
      return AER_TRACE_STAGE("election_wait");
    case TraceStage::kDispatchQueue:
      return AER_TRACE_STAGE("dispatch_queue");
    case TraceStage::kFenceAdmit:
      return AER_TRACE_STAGE("fence_admit");
    case TraceStage::kDispatchTransit:
      return AER_TRACE_STAGE("dispatch_transit");
    case TraceStage::kActionExec:
      return AER_TRACE_STAGE("action_exec");
    case TraceStage::kResultTransit:
      return AER_TRACE_STAGE("result_transit");
    case TraceStage::kTimeoutWait:
      return AER_TRACE_STAGE("timeout_wait");
    case TraceStage::kTakeoverGap:
      return AER_TRACE_STAGE("takeover_gap");
  }
  return "unknown";
}

std::string TraceStageMetricName(TraceStage stage) {
  return "aer_trace_stage_" + std::string(TraceStageName(stage)) + "_seconds";
}

namespace {

// Leadership presence and node crashes, distilled from the global
// (trace-less) records. Initially there is no leaseholder.
struct GlobalOverlay {
  // (time, has_leader after this instant), time-ordered.
  std::vector<std::pair<SimTime, bool>> leader_flips;
  // Crash times per coordinator, time-ordered.
  std::map<int, std::vector<SimTime>> crashes;
};

GlobalOverlay BuildOverlay(const std::vector<TraceRecord>& globals) {
  GlobalOverlay overlay;
  int leader = -1;
  for (const TraceRecord& r : globals) {
    switch (r.kind) {
      case TraceEventKind::kLeaderElected:
        if (leader < 0) overlay.leader_flips.emplace_back(r.time, true);
        leader = r.node;
        break;
      case TraceEventKind::kLeaderLost:
        if (r.node == leader) {
          leader = -1;
          overlay.leader_flips.emplace_back(r.time, false);
        }
        break;
      case TraceEventKind::kNodeCrash:
        overlay.crashes[r.node].push_back(r.time);
        if (r.node == leader) {
          leader = -1;
          overlay.leader_flips.emplace_back(r.time, false);
        }
        break;
      default:
        break;
    }
  }
  return overlay;
}

// The machine-visible wait states the cursor moves through. Detect,
// Dispatch, and Recovery are control-plane waits (leadership overlay
// applies); the rest are machine- or wire-bound.
enum class Wait {
  kDetect,    // incident injected, waiting for a leader to admit a symptom
  kDispatch,  // symptom admitted, waiting for the first dispatch
  kDelivery,  // dispatch on the wire, waiting for machine-side delivery
  kExec,      // action executing on the machine
  kResult,    // action finished, result on the wire back to the issuer
  kRecovery,  // attempt failed / lost / timed out; waiting for the next one
};

struct Walker {
  const GlobalOverlay& overlay;
  CriticalPath path;

  SimTime cursor = 0;
  Wait wait = Wait::kDetect;
  int current_attempt = -1;
  int last_issuer = -1;
  SimTime last_dispatch_time = -1;
  bool done = false;

  explicit Walker(const GlobalOverlay& overlay) : overlay(overlay) {}

  void AddSegment(TraceStage stage, SimTime from, SimTime to) {
    if (to < from) return;
    if (to > from) {
      path.stage_seconds[static_cast<int>(stage)] += to - from;
    } else if (stage != TraceStage::kFenceAdmit) {
      return;  // fence_admit is the only meaningful zero-width marker
    }
    if (!path.segments.empty() && path.segments.back().stage == stage &&
        path.segments.back().to == from) {
      path.segments.back().to = to;
      return;
    }
    path.segments.push_back({stage, from, to});
  }

  // Splits [from, to) at leadership flips: leaderless sub-intervals become
  // election_wait, the rest keep `base`.
  void AddWithLeadership(TraceStage base, SimTime from, SimTime to) {
    if (to <= from) return;
    bool leading = false;
    std::size_t i = 0;
    // State at `from` (a flip at exactly `from` applies to [from, ...)).
    while (i < overlay.leader_flips.size() &&
           overlay.leader_flips[i].first <= from) {
      leading = overlay.leader_flips[i].second;
      ++i;
    }
    SimTime pos = from;
    for (; i < overlay.leader_flips.size() &&
           overlay.leader_flips[i].first < to;
         ++i) {
      const auto& [flip_time, flip_leading] = overlay.leader_flips[i];
      if (flip_time > pos) {
        AddSegment(leading ? base : TraceStage::kElectionWait, pos, flip_time);
        pos = flip_time;
      }
      leading = flip_leading;
    }
    AddSegment(leading ? base : TraceStage::kElectionWait, pos, to);
  }

  // Classifies the control-plane wait [from, to). In Recovery the takeover
  // overlay applies: once the attempt's issuer has crashed (at or after the
  // dispatch), the remainder of the wait — up to the adopting leader's
  // re-dispatch at `to` — is the takeover resume gap.
  void AddControlWait(TraceStage base, SimTime from, SimTime to,
                      bool orphanable) {
    if (to <= from) return;
    SimTime gap_from = to;
    if (orphanable && last_issuer >= 0) {
      const auto it = overlay.crashes.find(last_issuer);
      if (it != overlay.crashes.end()) {
        for (const SimTime crash : it->second) {
          if (crash >= last_dispatch_time && crash < to) {
            gap_from = std::max(from, crash);
            break;
          }
        }
      }
    }
    AddWithLeadership(base, from, gap_from);
    AddSegment(TraceStage::kTakeoverGap, gap_from, to);
  }

  // Advances the cursor to `time`, attributing [cursor, time) to the
  // current wait state. A non-advancing time (e.g. a timeout record whose
  // deadline predates the cursor) is a state change only — the cursor never
  // moves backward, which is what keeps the stage sum exact.
  void AdvanceTo(SimTime time) {
    if (time <= cursor) return;
    switch (wait) {
      case Wait::kDetect:
        AddControlWait(TraceStage::kDetect, cursor, time, false);
        break;
      case Wait::kDispatch:
        AddControlWait(TraceStage::kDispatchQueue, cursor, time, false);
        break;
      case Wait::kDelivery:
        AddSegment(TraceStage::kDispatchTransit, cursor, time);
        break;
      case Wait::kExec:
        AddSegment(TraceStage::kActionExec, cursor, time);
        break;
      case Wait::kResult:
        AddSegment(TraceStage::kResultTransit, cursor, time);
        break;
      case Wait::kRecovery:
        AddControlWait(TraceStage::kTimeoutWait, cursor, time, true);
        break;
    }
    cursor = time;
  }

  // One record. Off-path records — duplicate-flagged hops, stale attempts,
  // re-emitted symptoms, overlapping incidents — never advance the cursor;
  // that is what makes the stage sum exact.
  void Step(const TraceRecord& r) {
    if (done) return;
    switch (r.kind) {
      case TraceEventKind::kIncident:
        // The root set the start; overlapping re-injections are annotations.
        break;
      case TraceEventKind::kSymptom:
        if (wait == Wait::kDetect) {
          AdvanceTo(r.time);
          wait = Wait::kDispatch;
        }
        break;
      case TraceEventKind::kDispatch:
        if (wait == Wait::kDispatch || wait == Wait::kRecovery ||
            wait == Wait::kDelivery) {
          AdvanceTo(r.time);
          wait = Wait::kDelivery;
          current_attempt = r.attempt;
          last_issuer = r.node;
          last_dispatch_time = r.time;
          ++path.attempts;
        }
        break;
      case TraceEventKind::kDispatchDrop:
      case TraceEventKind::kFenceReject:
      case TraceEventKind::kBusyDrop:
        if (wait == Wait::kDelivery && r.attempt == current_attempt &&
            !r.duplicate) {
          AdvanceTo(r.time);
          wait = Wait::kRecovery;
        }
        break;
      case TraceEventKind::kActionStart:
        if (wait == Wait::kDelivery && r.attempt == current_attempt &&
            !r.duplicate) {
          AdvanceTo(r.time);
          AddSegment(TraceStage::kFenceAdmit, r.time, r.time);
          wait = Wait::kExec;
        }
        break;
      case TraceEventKind::kActionDone:
        if (wait == Wait::kExec && r.attempt == current_attempt &&
            !r.duplicate) {
          AdvanceTo(r.time);
          wait = Wait::kResult;
        }
        break;
      case TraceEventKind::kCure:
        AdvanceTo(r.time);
        path.end = r.time;
        path.cured = true;
        done = true;
        break;
      case TraceEventKind::kResultDeliver:
      case TraceEventKind::kResultLost:
        if (wait == Wait::kResult && r.attempt == current_attempt &&
            !r.duplicate) {
          AdvanceTo(r.time);
          wait = Wait::kRecovery;
        }
        break;
      case TraceEventKind::kTimeout:
        if ((wait == Wait::kDelivery || wait == Wait::kExec ||
             wait == Wait::kResult) &&
            r.attempt == current_attempt) {
          AdvanceTo(r.time);
          wait = Wait::kRecovery;
        }
        break;
      default:
        break;  // kAdopt / drops of other kinds: annotations only
    }
    if (!done) path.end = std::max(path.end, cursor);
  }
};

}  // namespace

std::vector<CriticalPath> AnalyzeCriticalPaths(
    const std::vector<TraceRecord>& records) {
  std::vector<TraceRecord> globals;
  for (const TraceRecord& r : records) {
    if (r.trace_id == kNoTrace) globals.push_back(r);
  }
  const GlobalOverlay overlay = BuildOverlay(globals);

  // Group per trace in first-appearance order (records are already in
  // canonical collector order).
  std::vector<TraceId> order;
  std::map<TraceId, std::vector<const TraceRecord*>> by_trace;
  for (const TraceRecord& r : records) {
    if (r.trace_id == kNoTrace) continue;
    auto& list = by_trace[r.trace_id];
    if (list.empty()) order.push_back(r.trace_id);
    list.push_back(&r);
  }

  std::vector<CriticalPath> paths;
  paths.reserve(order.size());
  for (const TraceId trace_id : order) {
    const auto& list = by_trace[trace_id];
    Walker walker(overlay);
    walker.path.trace_id = trace_id;
    walker.path.machine = list.front()->machine;
    walker.path.start = list.front()->time;
    walker.path.end = list.front()->time;
    walker.cursor = list.front()->time;
    for (const TraceRecord* r : list) walker.Step(*r);
    paths.push_back(std::move(walker.path));
  }
  return paths;
}

void PublishCriticalPathMetrics(MetricsRegistry& registry,
                                const std::vector<CriticalPath>& paths) {
  Histogram& end_to_end =
      registry.GetHistogram("aer_trace_end_to_end_seconds");
  std::array<Histogram*, kNumTraceStages> stage_histograms{};
  for (int s = 0; s < kNumTraceStages; ++s) {
    stage_histograms[s] =
        &registry.GetHistogram(TraceStageMetricName(static_cast<TraceStage>(s)));
  }
  for (const CriticalPath& path : paths) {
    if (!path.cured) continue;
    end_to_end.Observe(static_cast<double>(path.end - path.start));
    std::array<bool, kNumTraceStages> present{};
    for (const StageSegment& segment : path.segments) {
      present[static_cast<int>(segment.stage)] = true;
    }
    for (int s = 0; s < kNumTraceStages; ++s) {
      if (!present[s]) continue;
      stage_histograms[s]->Observe(
          static_cast<double>(path.stage_seconds[s]));
    }
  }
}

std::string FormatCriticalPaths(const std::vector<CriticalPath>& paths) {
  std::string out;
  for (const CriticalPath& path : paths) {
    out += StrFormat(
        "critical-path trace=%016llx machine=%lld start=%lld end=%lld "
        "total=%lld attempts=%d cured=%d\n",
        static_cast<unsigned long long>(path.trace_id),
        static_cast<long long>(path.machine),
        static_cast<long long>(path.start),
        static_cast<long long>(path.end),
        static_cast<long long>(path.total_seconds()), path.attempts,
        path.cured ? 1 : 0);
    out += "  stages:";
    for (int s = 0; s < kNumTraceStages; ++s) {
      out += StrFormat(
          " %s=%lld",
          std::string(TraceStageName(static_cast<TraceStage>(s))).c_str(),
          static_cast<long long>(path.stage_seconds[s]));
    }
    out += "\n";
    for (const StageSegment& segment : path.segments) {
      out += StrFormat(
          "  segment %s [%lld,%lld)\n",
          std::string(TraceStageName(segment.stage)).c_str(),
          static_cast<long long>(segment.from),
          static_cast<long long>(segment.to));
    }
  }
  return out;
}

}  // namespace aer::obs
