// Deterministic causal trace identity.
//
// A TraceId names one machine sickness episode end to end: from the injected
// incident, through symptom fan-in, coordinator dispatch, machine-side action
// execution, and result delivery — across leader takeovers. Ids are a pure
// function of (seed, machine, episode ordinal): no RNG draws, no wall clock,
// so the same run always mints the same ids and trace output joins the
// byte-identical determinism surfaces (docs/OBSERVABILITY.md).
//
// TraceContext is the single field stamped onto ctrl::Message and
// ctrl::ActionDispatch; components that do not care simply copy it through.
#ifndef AER_OBS_TRACE_CONTEXT_H_
#define AER_OBS_TRACE_CONTEXT_H_

#include <cstdint>

namespace aer::obs {

using TraceId = std::uint64_t;

// "Not part of any trace". Propagation is a no-op for this id and the
// collector never records it as a process trace.
inline constexpr TraceId kNoTrace = 0;

// splitmix64 finalizer: a well-mixed bijection on 64-bit values. Constants
// are frozen — changing them changes every trace id and therefore every
// trace golden.
constexpr std::uint64_t MixTraceBits(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Trace id for the `episode`-th sickness episode (1-based) of `machine`
// under `seed`. Coerced away from kNoTrace so "no trace" stays unambiguous.
constexpr TraceId MakeTraceId(std::uint64_t seed, std::int64_t machine,
                              std::uint64_t episode) {
  const TraceId id = MixTraceBits(
      MixTraceBits(MixTraceBits(seed) ^ static_cast<std::uint64_t>(machine)) ^
      episode);
  return id == kNoTrace ? TraceId{1} : id;
}

// Deterministic head sampling: keep a trace iff its mixed id falls below
// probability * 2^53. The decision is a pure function of (id, probability),
// so every shard/coordinator agrees on it without coordination and the kept
// set is identical for any thread count. probability <= 0 keeps nothing,
// >= 1 keeps everything (2^53 avoids the 2^64 overflow at p == 1).
constexpr bool SampleTrace(TraceId id, double probability) {
  if (probability >= 1.0) return true;
  if (probability <= 0.0) return false;
  const std::uint64_t threshold =
      static_cast<std::uint64_t>(probability * 9007199254740992.0);  // 2^53
  return (MixTraceBits(id) >> 11) < threshold;
}

// The per-message causal context. Plain value type; copied on every hop.
struct TraceContext {
  TraceId trace_id = kNoTrace;

  constexpr bool active() const { return trace_id != kNoTrace; }
  friend constexpr bool operator==(const TraceContext&,
                                   const TraceContext&) = default;
};

}  // namespace aer::obs

#endif  // AER_OBS_TRACE_CONTEXT_H_
