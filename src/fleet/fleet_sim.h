// Fleet-scale discrete-event simulator: the ClusterSimulator's workload on
// a timing-wheel scheduler, SoA machine state, and sharded execution.
//
// Two run modes, two determinism guarantees (docs/FLEET_SIM.md):
//
//  RunSeedCompat() — single-shard replay of the seed engine's exact draw
//    order on the EventWheel. Output is byte-identical to
//    ClusterSimulator::Run for the same (config, catalog, policy); the
//    equivalence suite (tests/fleet/fleet_equivalence_test.cc) pins this.
//
//  Run() — the scale path. The fleet is split into contiguous machine-ID
//    shards; each machine owns an independent RNG stream
//    (DeriveStream(seed, machine)) and its own Poisson arrival chain (by
//    superposition, per-machine arrivals at rate 1/mtbf are exactly the
//    seed's fleet-level Poisson process). Shards run on the work-stealing
//    ThreadPool and a serial merge in machine-ID order assembles the
//    result, so the RecoveryLog and SimulationResult are byte-identical
//    for ANY thread count and ANY shard count. The one semantic difference
//    from the seed engine: a fault arriving at a machine that is already
//    down is skipped (counted in fault_arrivals_skipped) instead of being
//    redirected to a random healthy machine — victim redirection is global
//    state that would serialize the shards.
//
// Run() invokes the policy concurrently from shard threads, so it requires
// ChooseAction to be pure (the documented RecoveryPolicy contract) and
// OnActionOutcome to be state-free. All shipped stateless policies
// (UserDefinedPolicy, TrainedPolicy, HybridPolicy) qualify; learning
// policies (rl/online_policy.h) must use RunSeedCompat or an external lock.
#ifndef AER_FLEET_FLEET_SIM_H_
#define AER_FLEET_FLEET_SIM_H_

#include <cstdint>

#include "cluster/cluster_sim.h"
#include "cluster/fault_model.h"
#include "cluster/fleet_state.h"
#include "cluster/policy.h"
#include "common/thread_pool.h"
#include "fleet/shard_merge.h"
#include "obs/metrics.h"
#include "obs/trace_collector.h"

namespace aer::fleet {

// Interned symptom-id / fault-sampling tables shared by all shards of one
// run; defined in fleet_sim.cc.
struct FleetSimTables;

struct FleetSimConfig {
  // The workload parameters, shared verbatim with the seed engine.
  ClusterSimConfig sim;
  // Shard count for Run(). <= 0 derives a count from the fleet size alone
  // (deterministic in the config, never in the host's core count — shard
  // boundaries feed nothing into the output, but keeping the resolved
  // value config-pure keeps the aer_fleet_shards gauge reproducible).
  int num_shards = 0;
};

class FleetSimulator {
 public:
  FleetSimulator(FleetSimConfig config, FaultCatalog catalog);

  // Sharded run. `pool` supplies the worker threads (the calling thread
  // participates); nullptr runs the shards serially. Output is identical
  // either way.
  SimulationResult Run(RecoveryPolicy& policy, ThreadPool* pool = nullptr);

  // Seed-compatibility mode: byte-identical to ClusterSimulator::Run.
  SimulationResult RunSeedCompat(RecoveryPolicy& policy);

  // Optional observability sink; same contract as ClusterSimulator: the
  // aer_fleet_* metrics are folded in after the run, instrumentation never
  // feeds back into the simulation. The registry must outlive the runs.
  void SetMetrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }

  // Optional causal trace sink (must outlive the runs; null disables).
  // Each recovery process whose deterministic id passes the collector's
  // head sampling contributes incident/symptom/action/cure records,
  // buffered per shard and merged after the pool barrier (MergeShards) —
  // so the collector contents are byte-identical for any thread count.
  void SetTraceCollector(obs::TraceCollector* traces) { traces_ = traces; }

  const FaultCatalog& catalog() const { return catalog_; }

  // The shard count Run() will use (config_.num_shards resolved).
  int num_shards() const;

 private:
  void RunShard(int shard, int num_shards, const FleetSimTables& tables,
                FleetState& state, RecoveryPolicy& policy,
                ShardMerger& merger) const;
  // Serial merge in shard (machine-ID) order + final sorts + metric fold.
  void Finalize(std::vector<ShardOutput> outputs, int shards_used,
                SimulationResult& result);

  FleetSimConfig config_;
  FaultCatalog catalog_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::TraceCollector* traces_ = nullptr;
};

}  // namespace aer::fleet

#endif  // AER_FLEET_FLEET_SIM_H_
