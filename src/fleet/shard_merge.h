// Collection point for per-shard simulation output.
//
// Each shard of the fleet simulator produces a ShardOutput on whatever pool
// thread ran it; the merger is the only cross-thread meeting point. Results
// are slotted by shard index under the merger's mutex, and the serial merge
// (fleet_sim.cc) drains them with TakeAll() in ascending shard — i.e.
// machine-ID — order, which is what makes the merged log independent of
// thread schedule (docs/FLEET_SIM.md).
//
// The class is capability-annotated (docs/STATIC_ANALYSIS.md): slots are
// AER_GUARDED_BY(mu_), the *Locked() inspection API states AER_REQUIRES,
// and mu() exposes the capability for callers that batch reads. The
// negative-compile case tests/negative_compile/fleet_merge_unguarded.cc
// proves -Werror=thread-safety rejects unguarded use.
#ifndef AER_FLEET_SHARD_MERGE_H_
#define AER_FLEET_SHARD_MERGE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "cluster/cluster_sim.h"
#include "common/check.h"
#include "common/mutex.h"
#include "common/sim_time.h"
#include "common/thread_annotations.h"
#include "log/log_entry.h"
#include "obs/trace_collector.h"

namespace aer::fleet {

// Everything one shard contributes to the merged SimulationResult, plus the
// shard-local engine statistics folded into the aer_fleet_* metrics.
struct ShardOutput {
  std::vector<LogEntry> entries;
  std::vector<ProcessGroundTruth> ground_truth;
  // Sampled causal trace records, machine-local order. Merged into the
  // attached TraceCollector via MergeShards — byte-identical for any
  // shard-to-thread assignment. Empty unless tracing is attached.
  std::vector<obs::TraceRecord> trace;
  std::int64_t fault_arrivals = 0;
  std::int64_t fault_arrivals_skipped = 0;
  std::int64_t processes_completed = 0;
  SimTime total_downtime = 0;
  std::uint64_t events_processed = 0;
  std::size_t wheel_peak = 0;  // high-water mark of the shard's event wheel
};

class ShardMerger {
 public:
  explicit ShardMerger(int num_shards) {
    AER_CHECK_GT(num_shards, 0);
    slots_.resize(static_cast<std::size_t>(num_shards));
    filled_.assign(static_cast<std::size_t>(num_shards), 0);
  }

  ShardMerger(const ShardMerger&) = delete;
  ShardMerger& operator=(const ShardMerger&) = delete;

  // The capability guarding the slots, for callers batching locked reads.
  Mutex& mu() const AER_RETURN_CAPABILITY(mu_) { return mu_; }

  // Files shard `shard`'s output. Each slot is filled exactly once.
  void Add(int shard, ShardOutput output) AER_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    AER_CHECK_GE(shard, 0);
    AER_CHECK_LT(static_cast<std::size_t>(shard), slots_.size());
    AER_CHECK_EQ(filled_[static_cast<std::size_t>(shard)], 0);
    slots_[static_cast<std::size_t>(shard)] = std::move(output);
    filled_[static_cast<std::size_t>(shard)] = 1;
    ++num_filled_;
  }

  int num_shards_locked() const AER_REQUIRES(mu_) {
    return static_cast<int>(slots_.size());
  }
  int num_filled_locked() const AER_REQUIRES(mu_) { return num_filled_; }
  bool shard_filled_locked(int shard) const AER_REQUIRES(mu_) {
    return filled_[static_cast<std::size_t>(shard)] != 0;
  }
  const ShardOutput& shard_locked(int shard) const AER_REQUIRES(mu_) {
    AER_CHECK(shard_filled_locked(shard));
    return slots_[static_cast<std::size_t>(shard)];
  }

  // Moves out all outputs in shard order. Every slot must be filled — the
  // merge runs after the pool barrier, so a hole means a lost shard.
  std::vector<ShardOutput> TakeAll() AER_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    AER_CHECK_EQ(num_filled_, static_cast<int>(slots_.size()));
    std::vector<ShardOutput> out = std::move(slots_);
    slots_.clear();
    filled_.clear();
    num_filled_ = 0;
    return out;
  }

 private:
  mutable Mutex mu_;
  std::vector<ShardOutput> slots_ AER_GUARDED_BY(mu_);
  std::vector<std::uint8_t> filled_ AER_GUARDED_BY(mu_);
  int num_filled_ AER_GUARDED_BY(mu_) = 0;
};

}  // namespace aer::fleet

#endif  // AER_FLEET_SHARD_MERGE_H_
