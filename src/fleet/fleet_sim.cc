#include "fleet/fleet_sim.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "cluster/event_wheel.h"
#include "common/check.h"
#include "common/profiler.h"
#include "common/rng.h"

namespace aer::fleet {

// Interned symptom ids and fault-sampling tables, shared by every shard.
// Interning follows the seed engine's order exactly (per fault: primary,
// then its secondaries; then generics) so symptom ids — and therefore log
// bytes — match the seed engine for the same catalog.
struct FleetSimTables {
  std::vector<SymptomId> primary;
  std::vector<std::vector<SymptomId>> aux;
  std::vector<SymptomId> generic;
  std::vector<double> cum_rate;
  double total_rate = 0.0;
  int emitted_capacity = 1;  // primary + largest secondary set
};

namespace {

using Tables = FleetSimTables;

Tables BuildTables(const FaultCatalog& catalog, SymptomTable& symtab) {
  Tables t;
  t.primary.resize(catalog.faults.size());
  t.aux.resize(catalog.faults.size());
  int max_aux = 0;
  for (std::size_t f = 0; f < catalog.faults.size(); ++f) {
    t.primary[f] = symtab.Intern(catalog.faults[f].primary_symptom);
    for (const SecondarySymptom& s : catalog.faults[f].secondary_symptoms) {
      t.aux[f].push_back(symtab.Intern(s.name));
    }
    max_aux = std::max(max_aux, static_cast<int>(t.aux[f].size()));
  }
  t.generic.resize(catalog.generic_symptoms.size());
  for (std::size_t g = 0; g < catalog.generic_symptoms.size(); ++g) {
    t.generic[g] = symtab.Intern(catalog.generic_symptoms[g].name);
  }
  t.cum_rate.reserve(catalog.faults.size());
  for (const FaultType& f : catalog.faults) {
    t.total_rate += f.relative_rate;
    t.cum_rate.push_back(t.total_rate);
  }
  t.emitted_capacity = 1 + max_aux;
  return t;
}

// Seed-exact weighted fault draw (one NextDouble).
std::size_t SampleFault(Rng& rng, const Tables& t) {
  const double u = rng.NextDouble() * t.total_rate;
  const auto it = std::lower_bound(t.cum_rate.begin(), t.cum_rate.end(), u);
  return static_cast<std::size_t>(std::min<std::ptrdiff_t>(
      it - t.cum_rate.begin(),
      static_cast<std::ptrdiff_t>(t.cum_rate.size()) - 1));
}

// The recovery-process state machine, shared verbatim between compat and
// sharded modes. Draw order inside a process is the seed engine's, draw for
// draw; the Mode supplies which RNG stream the draws come from and how
// event ties are numbered:
//
//   CompatMode — one global Rng + a global push counter, replaying the
//     seed's (time, push-seq) heap order.
//   ShardMode — per-machine Rng streams + (machine, kind, seq) ties,
//     making every machine's timeline independent of all others.
template <typename Mode>
class EngineCore {
 public:
  EngineCore(const ClusterSimConfig& cfg, const FaultCatalog& catalog,
             const Tables& tables, FleetState& state, EventWheel& wheel,
             RecoveryPolicy& policy, ShardOutput& out, Mode& mode,
             const obs::TraceCollector* traces = nullptr)
      : cfg_(cfg),
        catalog_(catalog),
        t_(tables),
        st_(state),
        wheel_(wheel),
        policy_(policy),
        out_(out),
        mode_(mode),
        traces_(traces) {}

  // Buffers one sampled causal trace record into the shard output. The id
  // is a pure function of (seed, machine, process ordinal) and the sampling
  // decision a pure function of the id, so every shard agrees without
  // coordination and tracing never perturbs the simulation.
  void Trace(SimTime time, MachineId m, obs::TraceEventKind kind, int attempt,
             int action, std::string detail = {}) {
    if (traces_ == nullptr) return;
    const obs::TraceId id =
        obs::MakeTraceId(cfg_.seed, m, st_.process_seq(m));
    if (!traces_->Sampled(id)) return;
    obs::TraceRecord record;
    record.trace_id = id;
    record.time = time;
    record.kind = kind;
    record.machine = m;
    record.attempt = attempt;
    record.action = action;
    record.detail = std::move(detail);
    out_.trace.push_back(std::move(record));
  }

  void Push(SimTime time, FleetEventKind kind, MachineId machine,
            std::uint32_t process_seq, SymptomId symptom,
            RepairAction action) {
    FleetEvent ev;
    ev.kind = kind;
    ev.machine = machine;
    ev.process_seq = process_seq;
    ev.symptom = symptom;
    ev.action = action;
    wheel_.Schedule(time, mode_.NextTie(machine, kind), ev);
  }

  // Fault arrival accepted on a healthy machine: open a recovery process.
  // `f` was sampled by the caller (the victim-selection draw, if any,
  // precedes the fault draw — seed order).
  void BeginProcess(SimTime now, MachineId m, std::size_t f, Rng& rng) {
    st_.set_healthy(m, false);
    st_.bump_process_seq(m);
    st_.set_fault_index(m, static_cast<std::int32_t>(f));
    st_.set_noisy(m, false);
    st_.ClearProcess(m);
    st_.set_process_start(m, now);
    const std::uint32_t pseq = st_.process_seq(m);
    const FaultType& fault = catalog_.faults[f];

    // Primary symptom opens the process.
    out_.entries.push_back(LogEntry::Symptom(now, m, t_.primary[f]));
    st_.PushEmitted(m, t_.primary[f]);
    Trace(now, m, obs::TraceEventKind::kIncident, -1, -1,
          fault.primary_symptom);
    Trace(now, m, obs::TraceEventKind::kSymptom, -1, -1,
          fault.primary_symptom);

    // Detection completes after the monitoring delay; all secondary
    // symptoms land inside that window.
    const SimTime detect_delay = std::max<SimTime>(
        30, static_cast<SimTime>(rng.NextLogNormalWithMean(
                cfg_.mean_detection_delay_s, cfg_.detection_delay_sigma)));
    for (std::size_t a = 0; a < fault.secondary_symptoms.size(); ++a) {
      if (!rng.NextBool(fault.secondary_symptoms[a].probability)) continue;
      const SimTime offset =
          1 + static_cast<SimTime>(rng.NextBounded(static_cast<std::uint64_t>(
                  std::max<SimTime>(detect_delay - 1, 1))));
      Push(now + offset, FleetEventKind::kSymptom, m, pseq, t_.aux[f][a],
           RepairAction::kTryNop);
      st_.PushEmitted(m, t_.aux[f][a]);
    }

    // Generic machine-level noise symptoms.
    for (std::size_t g = 0; g < t_.generic.size(); ++g) {
      if (!rng.NextBool(catalog_.generic_symptoms[g].probability)) continue;
      st_.set_noisy(m, true);
      const SimTime offset =
          1 + static_cast<SimTime>(rng.NextBounded(static_cast<std::uint64_t>(
                  std::max<SimTime>(detect_delay - 1, 1))));
      Push(now + offset, FleetEventKind::kSymptom, m, pseq, t_.generic[g],
           RepairAction::kTryNop);
    }

    // Optional cross-fault noise: an unrelated fault's primary symptom
    // leaks into this process.
    if (rng.NextBool(cfg_.cross_fault_noise_probability)) {
      const std::size_t other = SampleFault(rng, t_);
      if (other != f) {
        st_.set_noisy(m, true);
        const SimTime offset =
            1 +
            static_cast<SimTime>(rng.NextBounded(static_cast<std::uint64_t>(
                std::max<SimTime>(detect_delay - 1, 1))));
        Push(now + offset, FleetEventKind::kSymptom, m, pseq,
             t_.primary[other], RepairAction::kTryNop);
      }
    }

    Push(now + detect_delay, FleetEventKind::kChooseAction, m, pseq,
         kInvalidSymptom, RepairAction::kTryNop);
  }

  void HandleSymptom(const ScheduledEvent& e) {
    if (Stale(e)) return;
    out_.entries.push_back(
        LogEntry::Symptom(e.time, e.event.machine, e.event.symptom));
    Trace(e.time, e.event.machine, obs::TraceEventKind::kSymptom, -1, -1);
  }

  void HandleChooseAction(const ScheduledEvent& e) {
    if (Stale(e)) return;
    StartAction(e.time, e.event.machine);
  }

  void HandleActionDone(const ScheduledEvent& e) {
    if (Stale(e)) return;
    const MachineId m = e.event.machine;
    Rng& rng = mode_.RngFor(m);
    const std::size_t f = static_cast<std::size_t>(st_.fault_index(m));
    const FaultType& fault = catalog_.faults[f];
    const double cure_p =
        fault.responses[static_cast<std::size_t>(ActionIndex(e.event.action))]
            .cure_probability;
    const bool cured = rng.NextBool(cure_p);

    // Result monitoring: the tried span excludes the action whose outcome
    // is being reported.
    {
      RecoveryContext ctx;
      ctx.machine = m;
      ctx.initial_symptom = t_.primary[f];
      ctx.initial_symptom_name = fault.primary_symptom;
      AER_CHECK_GT(st_.tried_count(m), 0);
      ctx.tried = std::span<const RepairAction>(
          st_.tried_data(m), static_cast<std::size_t>(st_.tried_count(m) - 1));
      ctx.process_start = st_.process_start(m);
      ctx.now = e.time;
      ctx.last_recovery_end = st_.last_recovery_end(m);
      policy_.OnActionOutcome(ctx, e.event.action,
                              e.time - st_.last_action_start(m), cured);
    }

    Trace(e.time, m, obs::TraceEventKind::kActionDone,
          st_.tried_count(m) - 1, ActionIndex(e.event.action),
          cured ? "cured" : "sick");
    if (cured) {
      Trace(e.time, m, obs::TraceEventKind::kCure, st_.tried_count(m) - 1,
            ActionIndex(e.event.action));
      out_.entries.push_back(LogEntry::Success(e.time, m));
      out_.ground_truth.push_back({.machine = m,
                                   .start = st_.process_start(m),
                                   .end = e.time,
                                   .fault_index = st_.fault_index(m),
                                   .noisy = st_.noisy(m)});
      ++out_.processes_completed;
      out_.total_downtime += e.time - st_.process_start(m);
      st_.set_healthy(m, true);
      st_.set_last_recovery_end(m, e.time);
      mode_.OnCured(m);
      return;
    }
    // Result monitoring is machine-local: the failed outcome is "delivered"
    // with zero transit, so the decision gap shows up as timeout_wait in
    // the critical path rather than an unattributed hole.
    Trace(e.time, m, obs::TraceEventKind::kResultDeliver,
          st_.tried_count(m) - 1, ActionIndex(e.event.action), "sick");
    // Failed: maybe re-emit a realized symptom, then choose the next action
    // after a decision gap.
    if (rng.NextBool(cfg_.symptom_reemit_probability) &&
        st_.emitted_count(m) > 0) {
      const SymptomId s = st_.emitted_at(
          m, static_cast<int>(rng.NextBounded(
                 static_cast<std::uint64_t>(st_.emitted_count(m)))));
      const SimTime offset = 5 + static_cast<SimTime>(rng.NextBounded(50));
      Push(e.time + offset, FleetEventKind::kSymptom, m, st_.process_seq(m),
           s, RepairAction::kTryNop);
    }
    const SimTime gap =
        cfg_.min_decision_gap_s +
        static_cast<SimTime>(rng.NextBounded(static_cast<std::uint64_t>(
            cfg_.max_decision_gap_s - cfg_.min_decision_gap_s + 1)));
    Push(e.time + gap, FleetEventKind::kChooseAction, m, st_.process_seq(m),
         kInvalidSymptom, RepairAction::kTryNop);
  }

 private:
  bool Stale(const ScheduledEvent& e) const {
    const MachineId m = e.event.machine;
    return st_.healthy(m) || st_.process_seq(m) != e.event.process_seq;
  }

  void StartAction(SimTime now, MachineId m) {
    Rng& rng = mode_.RngFor(m);
    const std::size_t f = static_cast<std::size_t>(st_.fault_index(m));
    const FaultType& fault = catalog_.faults[f];

    RepairAction action;
    if (st_.tried_count(m) >= cfg_.max_actions_per_process - 1) {
      // The paper's N cap: end the process by requesting manual repair.
      action = RepairAction::kRma;
    } else {
      RecoveryContext ctx;
      ctx.machine = m;
      ctx.initial_symptom = t_.primary[f];
      ctx.initial_symptom_name = fault.primary_symptom;
      ctx.tried = std::span<const RepairAction>(
          st_.tried_data(m), static_cast<std::size_t>(st_.tried_count(m)));
      ctx.process_start = st_.process_start(m);
      ctx.now = now;
      ctx.last_recovery_end = st_.last_recovery_end(m);
      action = policy_.ChooseAction(ctx);
    }

    st_.PushTried(m, action);
    st_.set_last_action_start(m, now);
    out_.entries.push_back(LogEntry::Action(now, m, action));
    Trace(now, m, obs::TraceEventKind::kDispatch, st_.tried_count(m) - 1,
          ActionIndex(action));
    Trace(now, m, obs::TraceEventKind::kActionStart,
          st_.tried_count(m) - 1, ActionIndex(action));
    const ActionResponse& resp =
        fault.responses[static_cast<std::size_t>(ActionIndex(action))];
    const SimTime duration = std::max<SimTime>(
        1, static_cast<SimTime>(
               st_.speed(m) * rng.NextLogNormalWithMean(resp.mean_duration_s,
                                                        resp.duration_sigma)));
    Push(now + duration, FleetEventKind::kActionDone, m, st_.process_seq(m),
         kInvalidSymptom, action);
  }

  const ClusterSimConfig& cfg_;
  const FaultCatalog& catalog_;
  const Tables& t_;
  FleetState& st_;
  EventWheel& wheel_;
  RecoveryPolicy& policy_;
  ShardOutput& out_;
  Mode& mode_;
  const obs::TraceCollector* traces_ = nullptr;
};

// One global RNG + global push counter: the seed engine's draw and tie
// order, replayed on the wheel.
struct CompatMode {
  explicit CompatMode(std::uint64_t seed) : rng(seed) {}
  Rng& RngFor(MachineId) { return rng; }
  std::uint64_t NextTie(MachineId, FleetEventKind) { return seq++; }
  void OnCured(MachineId m) { state->PoolAdd(m); }

  Rng rng;
  std::uint64_t seq = 0;
  FleetState* state = nullptr;
};

// Per-machine RNG streams and (machine, kind, seq) ties. No draw and no
// byte of state crosses a machine boundary, so shard composition — and
// with it thread count and shard count — cannot affect the output.
struct ShardMode {
  ShardMode(MachineId begin, MachineId end, std::uint64_t seed)
      : base(begin) {
    const std::size_t n = static_cast<std::size_t>(end - begin);
    rngs.reserve(n);
    for (MachineId m = begin; m < end; ++m) {
      rngs.emplace_back(DeriveStream(seed, static_cast<std::uint64_t>(m)));
    }
    seqs.assign(n, 0);
  }
  Rng& RngFor(MachineId m) {
    return rngs[static_cast<std::size_t>(m - base)];
  }
  std::uint64_t NextTie(MachineId m, FleetEventKind kind) {
    // (machine, kind, per-machine seq): 30 bits of machine id, 2 of kind,
    // 32 of sequence. The ctor checks the fleet fits the machine field.
    return (static_cast<std::uint64_t>(m) << 34) |
           (static_cast<std::uint64_t>(kind) << 32) |
           static_cast<std::uint64_t>(
               seqs[static_cast<std::size_t>(m - base)]++);
  }
  void OnCured(MachineId) {}

  MachineId base;
  std::vector<Rng> rngs;
  std::vector<std::uint32_t> seqs;
};

}  // namespace

FleetSimulator::FleetSimulator(FleetSimConfig config, FaultCatalog catalog)
    : config_(config), catalog_(std::move(catalog)) {
  const ClusterSimConfig& sim = config_.sim;
  AER_CHECK_GT(sim.num_machines, 0);
  // The sharded tie packs the machine id into 30 bits.
  AER_CHECK_LE(sim.num_machines, 1 << 28);
  AER_CHECK_GT(sim.duration, 0);
  AER_CHECK_GT(sim.machine_mtbf_days, 0.0);
  AER_CHECK_GE(sim.max_actions_per_process, 1);
  AER_CHECK_LE(sim.min_decision_gap_s, sim.max_decision_gap_s);
  AER_CHECK_GE(sim.diurnal_amplitude, 0.0);
  AER_CHECK_LT(sim.diurnal_amplitude, 1.0);
  catalog_.Validate();
}

int FleetSimulator::num_shards() const {
  const int machines = config_.sim.num_machines;
  if (config_.num_shards > 0) return std::min(config_.num_shards, machines);
  // Config-pure default: one shard per 16k machines, capped at 64 (a 10^6
  // fleet gets 62 shards; small test fleets run single-shard).
  return std::clamp(machines / 16384, 1, 64);
}

SimulationResult FleetSimulator::RunSeedCompat(RecoveryPolicy& policy) {
  AER_PROFILE_SCOPE("fleet_run_compat");
  const ClusterSimConfig& cfg = config_.sim;
  SimulationResult result;
  const FleetSimTables tables = BuildTables(catalog_, result.log.symptoms());

  FleetState state(FleetState::Layout{
      .num_machines = cfg.num_machines,
      .tried_capacity = cfg.max_actions_per_process,
      .emitted_capacity = tables.emitted_capacity,
      .with_healthy_pool = true});
  EventWheel wheel(0);
  CompatMode mode(cfg.seed);
  mode.state = &state;
  ShardOutput out;
  EngineCore<CompatMode> engine(cfg, catalog_, tables, state, wheel, policy,
                                out, mode, traces_);

  // Seed draw order: per-machine speeds first (only when spread > 0), then
  // the first arrival.
  if (cfg.machine_speed_spread > 0.0) {
    for (MachineId m = 0; m < cfg.num_machines; ++m) {
      state.set_speed(
          m, std::max(0.1, 1.0 + cfg.machine_speed_spread *
                                     (2.0 * mode.rng.NextDouble() - 1.0)));
    }
  }

  // Global Poisson arrivals across the fleet, diurnal modulation by
  // thinning against the peak rate — the seed engine's scheme verbatim.
  const double fleet_rate = static_cast<double>(cfg.num_machines) /
                            (cfg.machine_mtbf_days * static_cast<double>(kDay));
  const double peak_rate = fleet_rate * (1.0 + cfg.diurnal_amplitude);
  const auto schedule_next_arrival = [&](SimTime now) {
    const SimTime dt = std::max<SimTime>(
        1, static_cast<SimTime>(mode.rng.NextExponential(1.0 / peak_rate)));
    if (now + dt <= cfg.duration) {
      engine.Push(now + dt, FleetEventKind::kFaultArrival, 0, 0,
                  kInvalidSymptom, RepairAction::kTryNop);
    }
  };
  const auto accept_arrival = [&](SimTime t) {
    if (cfg.diurnal_amplitude == 0.0) return true;
    const double rate =
        fleet_rate * (1.0 + cfg.diurnal_amplitude *
                                std::sin(2.0 * 3.14159265358979323846 *
                                         static_cast<double>(t % kDay) /
                                         static_cast<double>(kDay)));
    return mode.rng.NextDouble() < rate / peak_rate;
  };
  schedule_next_arrival(0);

  ScheduledEvent e;
  while (wheel.PopNext(&e)) {
    ++out.events_processed;
    switch (e.event.kind) {
      case FleetEventKind::kFaultArrival: {
        schedule_next_arrival(e.time);
        if (!accept_arrival(e.time)) break;  // thinned (off-peak)
        ++out.fault_arrivals;
        if (state.pool_empty()) {
          ++out.fault_arrivals_skipped;  // whole fleet is down
          break;
        }
        const MachineId m = state.pool_at(
            mode.rng.NextBounded(state.pool_size()));
        state.PoolRemove(m);
        const std::size_t f = SampleFault(mode.rng, tables);
        engine.BeginProcess(e.time, m, f, mode.rng);
        break;
      }
      case FleetEventKind::kSymptom:
        engine.HandleSymptom(e);
        break;
      case FleetEventKind::kChooseAction:
        engine.HandleChooseAction(e);
        break;
      case FleetEventKind::kActionDone:
        engine.HandleActionDone(e);
        break;
    }
  }
  out.wheel_peak = wheel.peak_size();

  std::vector<ShardOutput> outputs;
  outputs.push_back(std::move(out));
  Finalize(std::move(outputs), /*shards_used=*/1, result);
  return result;
}

void FleetSimulator::RunShard(int shard, int shards, const FleetSimTables& t,
                              FleetState& state, RecoveryPolicy& policy,
                              ShardMerger& merger) const {
  AER_PROFILE_SCOPE("fleet_shard");
  const ClusterSimConfig& cfg = config_.sim;
  const MachineId begin = static_cast<MachineId>(
      static_cast<std::int64_t>(cfg.num_machines) * shard / shards);
  const MachineId end = static_cast<MachineId>(
      static_cast<std::int64_t>(cfg.num_machines) * (shard + 1) / shards);

  ShardOutput out;
  EventWheel wheel(0);
  ShardMode mode(begin, end, cfg.seed);
  EngineCore<ShardMode> engine(cfg, catalog_, t, state, wheel, policy, out,
                               mode, traces_);

  // Per-machine Poisson arrivals: superposing num_machines independent
  // rate-1/mtbf processes gives exactly the seed engine's fleet-level
  // Poisson process, but with no draw shared across machines. Diurnal
  // thinning applies the same relative modulation (the fleet/machine rate
  // ratio cancels out of rate(t)/peak).
  const double machine_rate =
      1.0 / (cfg.machine_mtbf_days * static_cast<double>(kDay));
  const double peak_rate = machine_rate * (1.0 + cfg.diurnal_amplitude);
  const auto schedule_next_arrival = [&](MachineId m, SimTime now) {
    const SimTime dt = std::max<SimTime>(
        1, static_cast<SimTime>(
               mode.RngFor(m).NextExponential(1.0 / peak_rate)));
    if (now + dt <= cfg.duration) {
      engine.Push(now + dt, FleetEventKind::kFaultArrival, m, 0,
                  kInvalidSymptom, RepairAction::kTryNop);
    }
  };
  const auto accept_arrival = [&](MachineId m, SimTime time) {
    if (cfg.diurnal_amplitude == 0.0) return true;
    const double factor =
        (1.0 + cfg.diurnal_amplitude *
                   std::sin(2.0 * 3.14159265358979323846 *
                            static_cast<double>(time % kDay) /
                            static_cast<double>(kDay))) /
        (1.0 + cfg.diurnal_amplitude);
    return mode.RngFor(m).NextDouble() < factor;
  };

  // Machine init mirrors the seed stream discipline per machine: the speed
  // draw (when spread > 0) comes first, then the first arrival.
  for (MachineId m = begin; m < end; ++m) {
    if (cfg.machine_speed_spread > 0.0) {
      state.set_speed(
          m, std::max(0.1, 1.0 + cfg.machine_speed_spread *
                                     (2.0 * mode.RngFor(m).NextDouble() -
                                      1.0)));
    }
    schedule_next_arrival(m, 0);
  }

  ScheduledEvent e;
  while (wheel.PopNext(&e)) {
    ++out.events_processed;
    const MachineId m = e.event.machine;
    switch (e.event.kind) {
      case FleetEventKind::kFaultArrival: {
        schedule_next_arrival(m, e.time);
        if (!accept_arrival(m, e.time)) break;  // thinned (off-peak)
        ++out.fault_arrivals;
        if (!state.healthy(m)) {
          // The machine is mid-recovery; the fault is lost. The seed engine
          // instead redirects arrivals to a random healthy machine — global
          // state the shards deliberately do not share (docs/FLEET_SIM.md).
          ++out.fault_arrivals_skipped;
          break;
        }
        const std::size_t f = SampleFault(mode.RngFor(m), t);
        engine.BeginProcess(e.time, m, f, mode.RngFor(m));
        break;
      }
      case FleetEventKind::kSymptom:
        engine.HandleSymptom(e);
        break;
      case FleetEventKind::kChooseAction:
        engine.HandleChooseAction(e);
        break;
      case FleetEventKind::kActionDone:
        engine.HandleActionDone(e);
        break;
    }
  }
  out.wheel_peak = wheel.peak_size();
  merger.Add(shard, std::move(out));
}

SimulationResult FleetSimulator::Run(RecoveryPolicy& policy,
                                     ThreadPool* pool) {
  AER_PROFILE_SCOPE("fleet_run");
  SimulationResult result;
  const FleetSimTables tables = BuildTables(catalog_, result.log.symptoms());
  const int shards = num_shards();

  // One global SoA block; shards own disjoint machine-id ranges of it.
  FleetState state(FleetState::Layout{
      .num_machines = config_.sim.num_machines,
      .tried_capacity = config_.sim.max_actions_per_process,
      .emitted_capacity = tables.emitted_capacity,
      .with_healthy_pool = false});
  ShardMerger merger(shards);
  const auto run_shard = [&](std::size_t s) {
    RunShard(static_cast<int>(s), shards, tables, state, policy, merger);
  };
  if (pool != nullptr && pool->num_threads() > 1 && shards > 1) {
    pool->ParallelFor(static_cast<std::size_t>(shards), run_shard);
  } else {
    for (int s = 0; s < shards; ++s) run_shard(static_cast<std::size_t>(s));
  }

  Finalize(merger.TakeAll(), shards, result);
  return result;
}

void FleetSimulator::Finalize(std::vector<ShardOutput> outputs,
                              int shards_used, SimulationResult& result) {
  AER_PROFILE_SCOPE("fleet_merge");
  std::int64_t arrivals = 0;
  std::uint64_t events = 0;
  std::size_t wheel_peak = 0;
  std::size_t num_gt = 0;
  for (const ShardOutput& out : outputs) num_gt += out.ground_truth.size();
  result.ground_truth.reserve(num_gt);
  if (traces_ != nullptr) {
    // Same discipline as the log merge: per-shard buffers handed over in
    // shard order, stably sorted by (time, machine) inside the collector.
    std::vector<std::vector<obs::TraceRecord>> trace_shards;
    trace_shards.reserve(outputs.size());
    for (ShardOutput& out : outputs) {
      trace_shards.push_back(std::move(out.trace));
    }
    traces_->MergeShards(std::move(trace_shards));
  }
  // Serial merge in shard (== machine-ID) order; the final stable sorts
  // put entries in the seed engine's (time, machine) order with per-key
  // insertion order preserved.
  for (ShardOutput& out : outputs) {
    for (const LogEntry& entry : out.entries) result.log.Append(entry);
    for (const ProcessGroundTruth& gt : out.ground_truth) {
      result.ground_truth.push_back(gt);
    }
    result.fault_arrivals_skipped += out.fault_arrivals_skipped;
    result.processes_completed += out.processes_completed;
    result.total_downtime += out.total_downtime;
    arrivals += out.fault_arrivals;
    events += out.events_processed;
    wheel_peak = std::max(wheel_peak, out.wheel_peak);
  }
  result.log.SortByTime();
  std::stable_sort(
      result.ground_truth.begin(), result.ground_truth.end(),
      [](const ProcessGroundTruth& a, const ProcessGroundTruth& b) {
        if (a.start != b.start) return a.start < b.start;
        return a.machine < b.machine;
      });

  if (metrics_ != nullptr) {
    metrics_->GetCounter("aer_fleet_events_total")
        .Inc(static_cast<std::int64_t>(events));
    metrics_->GetCounter("aer_fleet_arrivals_total").Inc(arrivals);
    metrics_->GetCounter("aer_fleet_arrivals_skipped_total")
        .Inc(result.fault_arrivals_skipped);
    metrics_->GetCounter("aer_fleet_processes_total")
        .Inc(result.processes_completed);
    metrics_->GetCounter("aer_fleet_downtime_seconds_total")
        .Inc(result.total_downtime);
    metrics_->GetGauge("aer_fleet_machines")
        .Set(static_cast<double>(config_.sim.num_machines));
    metrics_->GetGauge("aer_fleet_shards")
        .Set(static_cast<double>(shards_used));
    metrics_->GetGauge("aer_fleet_wheel_peak_events")
        .Set(static_cast<double>(wheel_peak));
  }
}

}  // namespace aer::fleet
