// Percentile bootstrap for the evaluation's headline statistic — the ratio
// of summed policy cost to summed actual cost over the test processes. The
// paper reports point estimates only; a reproduction should know how wide
// its error bars are before calling a shape "matched".
#ifndef AER_EVAL_BOOTSTRAP_H_
#define AER_EVAL_BOOTSTRAP_H_

#include <cstdint>
#include <span>
#include <utility>

namespace aer {

class ThreadPool;

struct BootstrapInterval {
  double point = 0.0;  // Σ numerator / Σ denominator on the full sample
  double low = 0.0;
  double high = 0.0;
  int resamples = 0;
  double confidence = 0.0;
};

// Pairs are (numerator_i, denominator_i) for one process: (policy cost,
// actual cost). Resamples pairs with replacement and takes the percentile
// interval of the ratio of sums. Deterministic for a given seed: resample r
// draws from its own stream DeriveStream(seed, r), so the result does not
// depend on how the resamples are scheduled — passing a `pool` fans them
// out over its workers and produces bit-identical intervals to the serial
// path (the equivalence is enforced by tests/eval/parallel_eval_test.cc).
BootstrapInterval BootstrapRatioCI(
    std::span<const std::pair<double, double>> pairs, int resamples = 2000,
    double confidence = 0.95, std::uint64_t seed = 1,
    ThreadPool* pool = nullptr);

}  // namespace aer

#endif  // AER_EVAL_BOOTSTRAP_H_
