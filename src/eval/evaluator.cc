#include "eval/evaluator.h"

#include "common/check.h"

namespace aer {

PolicyEvaluator::PolicyEvaluator(const SimulationPlatform& platform)
    : platform_(platform) {}

EvalSummary PolicyEvaluator::EvaluateTrained(
    const TrainedPolicy& policy, std::span<const RecoveryProcess> test) const {
  std::vector<TypeEvalRow> rows(platform_.types().num_types());
  std::vector<std::pair<double, double>> samples;
  for (const RecoveryProcess& p : test) {
    if (p.attempts().empty()) continue;
    const ErrorTypeId type = platform_.types().Classify(p);
    if (type == kInvalidErrorType) continue;
    TypeEvalRow& row = rows[static_cast<std::size_t>(type)];
    ++row.processes;

    const std::string& symptom_name =
        platform_.symptoms().Name(p.initial_symptom());
    const TrainedPolicy::TypeEntry* entry = policy.FindType(symptom_name);
    if (entry == nullptr) continue;  // unhandled: type unseen in training

    ProcessReplay replay(p, type, platform_.estimator(),
                         platform_.capabilities());
    int steps = 0;
    for (RepairAction a : entry->sequence) {
      if (replay.cured() ||
          steps >= platform_.max_actions_per_process()) {
        break;
      }
      replay.Step(a);
      ++steps;
    }
    if (!replay.cured()) continue;  // unhandled: learned sequence ran out

    ++row.handled;
    row.actual_cost += static_cast<double>(p.downtime());
    row.policy_cost += replay.total_cost();
    samples.push_back({replay.total_cost(),
                       static_cast<double>(p.downtime())});
  }
  return Finalize(std::move(rows), std::move(samples));
}

EvalSummary PolicyEvaluator::EvaluateFull(
    RecoveryPolicy& policy, std::span<const RecoveryProcess> test) const {
  std::vector<TypeEvalRow> rows(platform_.types().num_types());
  std::vector<std::pair<double, double>> samples;
  for (const RecoveryProcess& p : test) {
    if (p.attempts().empty()) continue;
    const ErrorTypeId type = platform_.types().Classify(p);
    if (type == kInvalidErrorType) continue;
    TypeEvalRow& row = rows[static_cast<std::size_t>(type)];
    ++row.processes;
    ++row.handled;
    const double cost = platform_.ReplayPolicy(p, policy).cost;
    row.actual_cost += static_cast<double>(p.downtime());
    row.policy_cost += cost;
    samples.push_back({cost, static_cast<double>(p.downtime())});
  }
  return Finalize(std::move(rows), std::move(samples));
}

EvalSummary PolicyEvaluator::Finalize(
    std::vector<TypeEvalRow> rows,
    std::vector<std::pair<double, double>> samples) const {
  EvalSummary summary;
  summary.samples = std::move(samples);
  for (std::size_t t = 0; t < rows.size(); ++t) {
    TypeEvalRow& row = rows[t];
    row.type = static_cast<ErrorTypeId>(t);
    row.relative_cost =
        row.actual_cost > 0 ? row.policy_cost / row.actual_cost : 0.0;
    row.coverage = row.processes > 0
                       ? static_cast<double>(row.handled) /
                             static_cast<double>(row.processes)
                       : 0.0;
    summary.total_processes += row.processes;
    summary.total_handled += row.handled;
    summary.total_actual_cost += row.actual_cost;
    summary.total_policy_cost += row.policy_cost;
  }
  summary.overall_relative_cost =
      summary.total_actual_cost > 0
          ? summary.total_policy_cost / summary.total_actual_cost
          : 0.0;
  summary.overall_coverage =
      summary.total_processes > 0
          ? static_cast<double>(summary.total_handled) /
                static_cast<double>(summary.total_processes)
          : 0.0;
  summary.rows = std::move(rows);
  return summary;
}

}  // namespace aer
