#include "eval/experiment.h"

#include "common/check.h"
#include "common/thread_pool.h"
#include "rl/parallel_trainer.h"

namespace aer {

ExperimentRunner::ExperimentRunner(
    std::span<const RecoveryProcess> clean_processes,
    const SymptomTable& symptoms, ExperimentConfig config)
    : clean_(clean_processes),
      symptoms_(symptoms),
      config_(std::move(config)),
      types_(clean_processes, config_.max_types) {
  AER_CHECK(!clean_.empty());
}

ExperimentResult ExperimentRunner::RunOne(double train_fraction,
                                          ThreadPool* pool) const {
  ExperimentResult result;
  result.train_fraction = train_fraction;

  const TrainTestSplit split = SplitByTime(clean_, train_fraction);
  result.train_processes = static_cast<std::int64_t>(split.train.size());
  result.test_processes = static_cast<std::int64_t>(split.test.size());

  // Train on the early portion: cost statistics, exploration and policy
  // generation all come from the training split only.
  const SimulationPlatform train_platform(split.train, types_, symptoms_,
                                          config_.trainer.max_actions);
  const QLearningTrainer trainer(train_platform, split.train, config_.trainer);
  QLearningTrainer::TrainingOutput output;
  if (config_.use_selection_tree) {
    const SelectionTreeTrainer tree(trainer, config_.tree);
    output = pool != nullptr ? ParallelTrainer(tree, *pool).TrainAll()
                             : tree.TrainAll();
  } else {
    output = pool != nullptr ? ParallelTrainer(trainer, *pool).TrainAll()
                             : trainer.TrainAll();
  }
  result.training = std::move(output.per_type);
  result.policy = std::move(output.policy);

  // Evaluate on the remaining log, priced from the test split's statistics.
  const SimulationPlatform test_platform(split.test, types_, symptoms_,
                                         config_.trainer.max_actions);
  const PolicyEvaluator evaluator(test_platform);
  result.trained = evaluator.EvaluateTrained(result.policy, split.test);

  UserDefinedPolicy user(config_.user_policy);
  HybridPolicy hybrid(result.policy, user);
  result.hybrid = evaluator.EvaluateFull(hybrid, split.test);

  return result;
}

std::vector<ExperimentResult> ExperimentRunner::RunAll(
    ThreadPool* pool) const {
  std::vector<ExperimentResult> results;
  results.reserve(config_.train_fractions.size());
  // Replications stay in submission order; each one fans its ~40 per-type
  // training shards out over the pool, which keeps every worker busy
  // without nesting replication-level parallelism on top.
  for (double fraction : config_.train_fractions) {
    results.push_back(RunOne(fraction, pool));
  }
  return results;
}

}  // namespace aer
