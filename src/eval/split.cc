#include "eval/split.h"

#include <cmath>

#include "common/check.h"

namespace aer {

TrainTestSplit SplitByTime(std::span<const RecoveryProcess> processes,
                           double train_fraction) {
  AER_CHECK_GT(train_fraction, 0.0);
  AER_CHECK_LT(train_fraction, 1.0);
  for (std::size_t i = 1; i < processes.size(); ++i) {
    AER_CHECK_LE(processes[i - 1].start_time(), processes[i].start_time());
  }
  const std::size_t cut = static_cast<std::size_t>(
      std::llround(train_fraction * static_cast<double>(processes.size())));
  TrainTestSplit split;
  split.train.assign(processes.begin(),
                     processes.begin() + static_cast<std::ptrdiff_t>(cut));
  split.test.assign(processes.begin() + static_cast<std::ptrdiff_t>(cut),
                    processes.end());
  return split;
}

}  // namespace aer
