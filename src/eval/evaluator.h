// Policy evaluation on a held-out portion of the recovery log (Section 5).
//
// For each test process the candidate policy is replayed on the simulation
// platform and its estimated downtime is compared with the actual logged
// downtime. Two accounting modes mirror the paper's experiments:
//
//  - Trained-policy mode (Figures 8-10): a process the trained policy cannot
//    finish (unknown type, or its learned sequence runs out uncured) is
//    *unhandled*; unhandled costs are excluded on both sides and coverage is
//    reported per type.
//  - Full-policy mode (Figures 7, 11, 12): any RecoveryPolicy — the
//    user-defined one or the hybrid — finishes every process (the N cap
//    forces manual repair), so all processes count.
#ifndef AER_EVAL_EVALUATOR_H_
#define AER_EVAL_EVALUATOR_H_

#include <span>
#include <vector>

#include "rl/policy.h"
#include "sim/platform.h"

namespace aer {

struct TypeEvalRow {
  ErrorTypeId type = kInvalidErrorType;
  std::int64_t processes = 0;  // classified test processes of this type
  std::int64_t handled = 0;
  double actual_cost = 0.0;  // logged downtime, handled processes only
  double policy_cost = 0.0;  // estimated downtime, handled processes only
  // policy_cost / actual_cost (0 when the type has no handled processes).
  double relative_cost = 0.0;
  double coverage = 0.0;  // handled / processes
};

struct EvalSummary {
  std::vector<TypeEvalRow> rows;  // indexed by ErrorTypeId
  // One (policy cost, actual cost) pair per counted process, in test order;
  // feed to BootstrapRatioCI for error bars on overall_relative_cost.
  std::vector<std::pair<double, double>> samples;
  std::int64_t total_processes = 0;
  std::int64_t total_handled = 0;
  double total_actual_cost = 0.0;
  double total_policy_cost = 0.0;
  double overall_relative_cost = 0.0;
  double overall_coverage = 0.0;
};

class PolicyEvaluator {
 public:
  // `platform` should be built over the same processes passed to the
  // Evaluate* calls, so both policies are priced from the test split's own
  // statistics.
  explicit PolicyEvaluator(const SimulationPlatform& platform);

  // Trained-policy accounting (handled/unhandled).
  EvalSummary EvaluateTrained(const TrainedPolicy& policy,
                              std::span<const RecoveryProcess> test) const;

  // Full accounting for a complete policy.
  EvalSummary EvaluateFull(RecoveryPolicy& policy,
                           std::span<const RecoveryProcess> test) const;

 private:
  EvalSummary Finalize(std::vector<TypeEvalRow> rows,
                       std::vector<std::pair<double, double>> samples) const;

  const SimulationPlatform& platform_;
};

}  // namespace aer

#endif  // AER_EVAL_EVALUATOR_H_
