// Train/test splitting of recovery processes "according to time order"
// (Section 5): the earliest fraction of processes trains the policy, the
// remainder tests it — matching how an operator would deploy the method.
#ifndef AER_EVAL_SPLIT_H_
#define AER_EVAL_SPLIT_H_

#include <span>
#include <vector>

#include "log/recovery_process.h"

namespace aer {

struct TrainTestSplit {
  std::vector<RecoveryProcess> train;
  std::vector<RecoveryProcess> test;
};

// `processes` must be ordered by start time (SegmentIntoProcesses output
// is). `train_fraction` in (0, 1).
TrainTestSplit SplitByTime(std::span<const RecoveryProcess> processes,
                           double train_fraction);

}  // namespace aer

#endif  // AER_EVAL_SPLIT_H_
