#include "eval/bootstrap.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "common/thread_pool.h"

namespace aer {

BootstrapInterval BootstrapRatioCI(
    std::span<const std::pair<double, double>> pairs, int resamples,
    double confidence, std::uint64_t seed, ThreadPool* pool) {
  AER_CHECK_GT(resamples, 0);
  AER_CHECK_GT(confidence, 0.0);
  AER_CHECK_LT(confidence, 1.0);

  BootstrapInterval interval;
  interval.resamples = resamples;
  interval.confidence = confidence;
  if (pairs.empty()) return interval;

  double num = 0.0;
  double den = 0.0;
  for (const auto& [n, d] : pairs) {
    num += n;
    den += d;
  }
  interval.point = den > 0 ? num / den : 0.0;

  // Each resample draws from its own derived stream, so ratios[r] is a pure
  // function of (seed, r) — identical whether the loop below runs serially
  // or fanned out over the pool.
  std::vector<double> ratios(static_cast<std::size_t>(resamples));
  const auto one_resample = [&](std::size_t r) {
    Rng rng(DeriveStream(seed, static_cast<std::uint64_t>(r)));
    double rn = 0.0;
    double rd = 0.0;
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      const auto& [n, d] = pairs[rng.NextBounded(pairs.size())];
      rn += n;
      rd += d;
    }
    ratios[r] = rd > 0 ? rn / rd : 0.0;
  };
  if (pool != nullptr) {
    pool->ParallelFor(ratios.size(), one_resample);
  } else {
    for (std::size_t r = 0; r < ratios.size(); ++r) one_resample(r);
  }

  std::sort(ratios.begin(), ratios.end());
  const double alpha = (1.0 - confidence) / 2.0;
  const auto at = [&](double q) {
    const double pos = q * static_cast<double>(ratios.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(std::floor(pos));
    const std::size_t hi = std::min(lo + 1, ratios.size() - 1);
    const double frac = pos - std::floor(pos);
    return ratios[lo] * (1.0 - frac) + ratios[hi] * frac;
  };
  interval.low = at(alpha);
  interval.high = at(1.0 - alpha);
  return interval;
}

}  // namespace aer
