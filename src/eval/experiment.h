// The paper's end-to-end experiments (Section 5): split the noise-filtered
// log by time at 20/40/60/80% (tests 1-4), train a policy on each training
// portion, evaluate the trained and hybrid policies on the remaining log.
//
// The error-type catalog (the "40 most frequent error types", Section 4.1)
// is built once over the whole clean log, so type indices — the x axis of
// Figures 5-14 — are identical across the four tests.
#ifndef AER_EVAL_EXPERIMENT_H_
#define AER_EVAL_EXPERIMENT_H_

#include "cluster/user_policy.h"
#include "eval/evaluator.h"
#include "eval/split.h"
#include "rl/selection_tree.h"

namespace aer {

struct ExperimentConfig {
  std::vector<double> train_fractions = {0.2, 0.4, 0.6, 0.8};
  std::size_t max_types = 40;
  TrainerConfig trainer;
  // Generate policies via the selection tree (Section 5.3) instead of plain
  // greedy extraction. On by default: the exact tree scan is both faster to
  // converge and the policies are strictly no worse; the Figure 13/14
  // benches set this to false for the standard-RL comparison arm.
  bool use_selection_tree = true;
  SelectionTreeConfig tree;
  EscalationConfig user_policy;
};

struct ExperimentResult {
  double train_fraction = 0.0;
  // Figures 8-10: trained policy, handled-only accounting.
  EvalSummary trained;
  // Figures 11-12: hybrid policy, all test processes.
  EvalSummary hybrid;
  // Figure 13/14 inputs: per-type training telemetry.
  std::vector<TypeTrainingResult> training;
  // The deployable artifacts, for inspection and reuse.
  TrainedPolicy policy;
  std::int64_t train_processes = 0;
  std::int64_t test_processes = 0;
};

class ThreadPool;

class ExperimentRunner {
 public:
  // `clean_processes`: noise-filtered, time-ordered processes; `symptoms`:
  // the log's symptom table. Both must outlive the runner.
  ExperimentRunner(std::span<const RecoveryProcess> clean_processes,
                   const SymptomTable& symptoms, ExperimentConfig config);

  // With a pool, training shards by error type through ParallelTrainer;
  // results are bit-identical to the serial path for any thread count
  // (docs/PARALLELISM.md). The experiment replications (one per train
  // fraction) are themselves independent, so RunAll() keeps the pool busy
  // across the per-type shards of whichever replication is in flight.
  ExperimentResult RunOne(double train_fraction,
                          ThreadPool* pool = nullptr) const;
  std::vector<ExperimentResult> RunAll(ThreadPool* pool = nullptr) const;

  const ErrorTypeCatalog& types() const { return types_; }
  const ExperimentConfig& config() const { return config_; }

 private:
  std::span<const RecoveryProcess> clean_;
  const SymptomTable& symptoms_;
  ExperimentConfig config_;
  ErrorTypeCatalog types_;
};

}  // namespace aer

#endif  // AER_EVAL_EXPERIMENT_H_
