#include "mining/error_type.h"

#include <algorithm>

#include "common/check.h"
#include "log/log_stats.h"

namespace aer {

NoiseFilterResult FilterNoisyProcesses(
    std::span<const RecoveryProcess> processes,
    const SymptomClustering& clustering) {
  NoiseFilterResult result;
  for (std::size_t i = 0; i < processes.size(); ++i) {
    if (clustering.IsCohesive(processes[i])) {
      result.clean.push_back(i);
    } else {
      result.noisy.push_back(i);
    }
  }
  result.clean_fraction =
      processes.empty()
          ? 0.0
          : static_cast<double>(result.clean.size()) /
                static_cast<double>(processes.size());
  return result;
}

ErrorTypeCatalog::ErrorTypeCatalog(
    std::span<const RecoveryProcess> processes, std::size_t max_types) {
  std::unordered_map<SymptomId, std::int64_t> counts;
  for (const RecoveryProcess& p : processes) {
    ++counts[p.initial_symptom()];
  }
  std::vector<TypeInfo> all;
  all.reserve(counts.size());
  for (const auto& [symptom, count] : counts) {
    all.push_back({symptom, count});
  }
  std::sort(all.begin(), all.end(), [](const TypeInfo& a, const TypeInfo& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.symptom < b.symptom;
  });
  if (all.size() > max_types) all.resize(max_types);
  types_ = std::move(all);

  std::int64_t covered = 0;
  for (std::size_t i = 0; i < types_.size(); ++i) {
    by_symptom_[types_[i].symptom] = static_cast<ErrorTypeId>(i);
    covered += types_[i].count;
  }
  coverage_ = processes.empty()
                  ? 0.0
                  : static_cast<double>(covered) /
                        static_cast<double>(processes.size());
}

ErrorTypeId ErrorTypeCatalog::Classify(const RecoveryProcess& process) const {
  return ClassifySymptom(process.initial_symptom());
}

ErrorTypeId ErrorTypeCatalog::ClassifySymptom(SymptomId initial_symptom) const {
  const auto it = by_symptom_.find(initial_symptom);
  return it == by_symptom_.end() ? kInvalidErrorType : it->second;
}

SymptomId ErrorTypeCatalog::symptom_of(ErrorTypeId t) const {
  AER_CHECK_GE(t, 0);
  AER_CHECK_LT(static_cast<std::size_t>(t), types_.size());
  return types_[static_cast<std::size_t>(t)].symptom;
}

std::int64_t ErrorTypeCatalog::count_of(ErrorTypeId t) const {
  AER_CHECK_GE(t, 0);
  AER_CHECK_LT(static_cast<std::size_t>(t), types_.size());
  return types_[static_cast<std::size_t>(t)].count;
}

}  // namespace aer
