// Error-type inference and noise filtering (Section 3.1).
//
// The error type of a recovery process is its *initial symptom*, which the
// paper shows is representative of the whole symptom set of the underlying
// fault. Processes whose symptoms span more than one mined cluster (or touch
// unclustered symptoms) likely contain more than one concurrent error; they
// are filtered out as noise before training (3.33% of the paper's log).
#ifndef AER_MINING_ERROR_TYPE_H_
#define AER_MINING_ERROR_TYPE_H_

#include <span>
#include <unordered_map>
#include <vector>

#include "mining/symptom_clusters.h"

namespace aer {

// Dense index of an error type in rank order (0 = most frequent).
using ErrorTypeId = int;
inline constexpr ErrorTypeId kInvalidErrorType = -1;

struct NoiseFilterResult {
  std::vector<std::size_t> clean;  // indices into the input processes
  std::vector<std::size_t> noisy;
  double clean_fraction = 0.0;
};

// Splits processes into cohesive (clean) and noisy per the clustering.
NoiseFilterResult FilterNoisyProcesses(
    std::span<const RecoveryProcess> processes,
    const SymptomClustering& clustering);

// The error-type catalog induced from a (noise-filtered) training log: maps
// initial symptoms to dense rank-ordered type ids and remembers counts.
class ErrorTypeCatalog {
 public:
  // `processes` should already be noise-filtered; `max_types` keeps only the
  // most frequent types (the paper keeps 40 of 97).
  ErrorTypeCatalog(std::span<const RecoveryProcess> processes,
                   std::size_t max_types);

  // Type id of a process (by initial symptom) or kInvalidErrorType if its
  // initial symptom is not in the catalog.
  ErrorTypeId Classify(const RecoveryProcess& process) const;
  ErrorTypeId ClassifySymptom(SymptomId initial_symptom) const;

  std::size_t num_types() const { return types_.size(); }
  SymptomId symptom_of(ErrorTypeId t) const;
  std::int64_t count_of(ErrorTypeId t) const;

  // Fraction of input processes covered by the kept types.
  double coverage() const { return coverage_; }

 private:
  struct TypeInfo {
    SymptomId symptom = kInvalidSymptom;
    std::int64_t count = 0;
  };
  std::vector<TypeInfo> types_;  // rank order
  std::unordered_map<SymptomId, ErrorTypeId> by_symptom_;
  double coverage_ = 0.0;
};

}  // namespace aer

#endif  // AER_MINING_ERROR_TYPE_H_
