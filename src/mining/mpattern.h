// Mutually-dependent pattern (m-pattern) mining, after Ma & Hellerstein,
// "Mining Mutually Dependent Patterns" (IEEE JSAC 2002) — reference [19] of
// the paper.
//
// An itemset X is an m-pattern at dependence strength `minp` if every item
// i ∈ X satisfies  P(X | i) = sup(X) / sup(i) ≥ minp:  whenever any one of
// the items occurs, the whole set co-occurs with probability at least minp.
// Unlike frequent itemsets, m-patterns capture *infrequent but highly
// correlated* items — exactly the structure of error symptoms, where a rare
// fault deterministically emits its own small set of symptoms.
//
// m-patterns are downward closed (every subset of an m-pattern is an
// m-pattern), so we mine level-wise, Apriori style. Transactions here are
// the distinct-symptom sets of recovery processes and are small (≤ ~16
// items), so support counting enumerates per-transaction subsets.
#ifndef AER_MINING_MPATTERN_H_
#define AER_MINING_MPATTERN_H_

#include <cstdint>
#include <span>
#include <vector>

#include "log/symptom.h"

namespace aer {

// A transaction: sorted, de-duplicated item (symptom) ids.
using Transaction = std::vector<SymptomId>;

// An itemset, sorted ascending.
using ItemSet = std::vector<SymptomId>;

struct MPatternConfig {
  // Minimum mutual-dependence strength; the paper uses minp = 0.1 for the
  // final clustering (Section 3.1).
  double minp = 0.1;
  // Minimum absolute support: ignore items seen fewer times than this (the
  // mutual-dependence test is meaningless on single occurrences).
  std::int64_t min_support = 2;
  // Safety cap on pattern size; symptom sets per fault are small.
  std::size_t max_pattern_size = 16;
};

class MPatternMiner {
 public:
  explicit MPatternMiner(MPatternConfig config);

  // All m-patterns of size >= 1 over the transactions, each sorted
  // ascending; the result is sorted lexicographically within each size,
  // sizes ascending.
  std::vector<ItemSet> MineAll(std::span<const Transaction> transactions) const;

  // Only the maximal m-patterns (no mined superset). These act as the
  // symptom clusters of Section 3.1.
  std::vector<ItemSet> MineMaximal(
      std::span<const Transaction> transactions) const;

  // Support of an itemset: number of transactions containing all its items.
  static std::int64_t Support(const ItemSet& items,
                              std::span<const Transaction> transactions);

 private:
  MPatternConfig config_;
};

}  // namespace aer

#endif  // AER_MINING_MPATTERN_H_
