// Symptom clustering on top of m-pattern mining (Section 3.1).
//
// The maximal m-patterns over the processes' distinct-symptom sets act as
// symptom clusters. A process is "cohesive" when all its symptoms fall inside
// a single cluster — the fraction of cohesive processes versus minp is the
// paper's Figure 3, and non-cohesive processes are treated as noise.
#ifndef AER_MINING_SYMPTOM_CLUSTERS_H_
#define AER_MINING_SYMPTOM_CLUSTERS_H_

#include <span>
#include <unordered_map>
#include <vector>

#include "mining/mpattern.h"
#include "log/recovery_process.h"

namespace aer {

// The distinct-symptom transactions of an ensemble of processes.
std::vector<Transaction> BuildSymptomTransactions(
    std::span<const RecoveryProcess> processes);

class SymptomClustering {
 public:
  // Mines maximal m-patterns at the given strength and indexes them.
  SymptomClustering(std::span<const RecoveryProcess> processes,
                    const MPatternConfig& config);

  const std::vector<ItemSet>& clusters() const { return clusters_; }

  // True if every distinct symptom of the process lies in one mined cluster.
  bool IsCohesive(const RecoveryProcess& process) const;

  // Fraction of processes that are cohesive (one Figure 3 data point).
  double CohesiveFraction(std::span<const RecoveryProcess> processes) const;

  // Index of the largest cluster containing `symptom`, or -1 if none.
  int ClusterOf(SymptomId symptom) const;

 private:
  std::vector<ItemSet> clusters_;
  // symptom -> indices of clusters containing it (clusters can overlap).
  std::unordered_map<SymptomId, std::vector<int>> by_symptom_;
};

// Convenience for the Figure 3 sweep: cohesive fraction per minp value.
std::vector<double> CohesiveFractionSweep(
    std::span<const RecoveryProcess> processes,
    std::span<const double> minp_values);

}  // namespace aer

#endif  // AER_MINING_SYMPTOM_CLUSTERS_H_
