#include "mining/symptom_clusters.h"

#include <algorithm>

#include "common/check.h"

namespace aer {

std::vector<Transaction> BuildSymptomTransactions(
    std::span<const RecoveryProcess> processes) {
  std::vector<Transaction> txns;
  txns.reserve(processes.size());
  for (const RecoveryProcess& p : processes) {
    txns.push_back(p.DistinctSymptoms());
  }
  return txns;
}

SymptomClustering::SymptomClustering(
    std::span<const RecoveryProcess> processes, const MPatternConfig& config) {
  const std::vector<Transaction> txns = BuildSymptomTransactions(processes);
  clusters_ = MPatternMiner(config).MineMaximal(txns);
  for (std::size_t ci = 0; ci < clusters_.size(); ++ci) {
    for (SymptomId s : clusters_[ci]) {
      by_symptom_[s].push_back(static_cast<int>(ci));
    }
  }
}

bool SymptomClustering::IsCohesive(const RecoveryProcess& process) const {
  const std::vector<SymptomId> symptoms = process.DistinctSymptoms();
  AER_CHECK(!symptoms.empty());
  // Candidate clusters: those containing the first symptom; the process is
  // cohesive iff one of them contains every symptom.
  const auto it = by_symptom_.find(symptoms.front());
  if (it == by_symptom_.end()) return false;
  for (int ci : it->second) {
    const ItemSet& cluster = clusters_[static_cast<std::size_t>(ci)];
    if (std::includes(cluster.begin(), cluster.end(), symptoms.begin(),
                      symptoms.end())) {
      return true;
    }
  }
  return false;
}

double SymptomClustering::CohesiveFraction(
    std::span<const RecoveryProcess> processes) const {
  if (processes.empty()) return 0.0;
  std::int64_t cohesive = 0;
  for (const RecoveryProcess& p : processes) {
    if (IsCohesive(p)) ++cohesive;
  }
  return static_cast<double>(cohesive) / static_cast<double>(processes.size());
}

int SymptomClustering::ClusterOf(SymptomId symptom) const {
  const auto it = by_symptom_.find(symptom);
  if (it == by_symptom_.end()) return -1;
  int best = -1;
  std::size_t best_size = 0;
  for (int ci : it->second) {
    const std::size_t size = clusters_[static_cast<std::size_t>(ci)].size();
    if (size > best_size || (size == best_size && (best == -1 || ci < best))) {
      best = ci;
      best_size = size;
    }
  }
  return best;
}

std::vector<double> CohesiveFractionSweep(
    std::span<const RecoveryProcess> processes,
    std::span<const double> minp_values) {
  std::vector<double> out;
  out.reserve(minp_values.size());
  for (double minp : minp_values) {
    MPatternConfig config;
    config.minp = minp;
    const SymptomClustering clustering(processes, config);
    out.push_back(clustering.CohesiveFraction(processes));
  }
  return out;
}

}  // namespace aer
