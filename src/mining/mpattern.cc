#include "mining/mpattern.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

#include "common/check.h"

namespace aer {
namespace {

// Enumerates all size-k subsets of `txn` and invokes `fn` on each. `txn` is
// sorted, so emitted subsets are sorted too. Recursion depth is bounded by k
// (<= max_pattern_size).
template <typename Fn>
void ForEachSubset(const Transaction& txn, std::size_t k, std::size_t start,
                   ItemSet& scratch, const Fn& fn) {
  if (scratch.size() == k) {
    fn(scratch);
    return;
  }
  // Not enough items left to complete the subset?
  const std::size_t needed = k - scratch.size();
  for (std::size_t i = start; i + needed <= txn.size(); ++i) {
    scratch.push_back(txn[i]);
    ForEachSubset(txn, k, i + 1, scratch, fn);
    scratch.pop_back();
  }
}

}  // namespace

MPatternMiner::MPatternMiner(MPatternConfig config) : config_(config) {
  AER_CHECK_GT(config_.minp, 0.0);
  AER_CHECK_LE(config_.minp, 1.0);
  AER_CHECK_GE(config_.min_support, 1);
  AER_CHECK_GE(config_.max_pattern_size, 1u);
}

std::int64_t MPatternMiner::Support(const ItemSet& items,
                                    std::span<const Transaction> transactions) {
  std::int64_t support = 0;
  for (const Transaction& txn : transactions) {
    if (std::includes(txn.begin(), txn.end(), items.begin(), items.end())) {
      ++support;
    }
  }
  return support;
}

std::vector<ItemSet> MPatternMiner::MineAll(
    std::span<const Transaction> transactions) const {
  // Item supports.
  std::unordered_map<SymptomId, std::int64_t> item_support;
  for (const Transaction& txn : transactions) {
    AER_CHECK(std::is_sorted(txn.begin(), txn.end()));
    for (SymptomId item : txn) ++item_support[item];
  }

  // Level 1: every sufficiently-supported single item is trivially an
  // m-pattern (sup(X)/sup(i) == 1).
  std::vector<ItemSet> result;
  std::vector<ItemSet> level;
  for (const auto& [item, sup] : item_support) {
    if (sup >= config_.min_support) level.push_back({item});
  }
  std::sort(level.begin(), level.end());

  const auto is_mpattern = [&](const ItemSet& items,
                               std::int64_t support) {
    if (support < config_.min_support) return false;
    for (SymptomId item : items) {
      const auto it = item_support.find(item);
      AER_CHECK(it != item_support.end())
          << "candidate item " << item << " missing from 1-item support map";
      const double dep =
          static_cast<double>(support) / static_cast<double>(it->second);
      if (dep < config_.minp) return false;
    }
    return true;
  };

  while (!level.empty()) {
    result.insert(result.end(), level.begin(), level.end());
    if (level.front().size() >= config_.max_pattern_size) break;
    const std::size_t k = level.front().size() + 1;

    // Candidate generation: join patterns sharing a (k-2)-prefix, then prune
    // candidates with a non-pattern (k-1)-subset (downward closure).
    std::set<ItemSet> prev(level.begin(), level.end());
    std::set<ItemSet> candidates;
    for (std::size_t i = 0; i < level.size(); ++i) {
      for (std::size_t j = i + 1; j < level.size(); ++j) {
        const ItemSet& a = level[i];
        const ItemSet& b = level[j];
        if (!std::equal(a.begin(), a.end() - 1, b.begin(), b.end() - 1)) {
          // level is sorted lexicographically, so once prefixes diverge no
          // later j matches either.
          break;
        }
        ItemSet joined(a);
        joined.push_back(b.back());
        bool all_subsets_present = true;
        ItemSet subset(joined.begin() + 1, joined.end());
        for (std::size_t drop = 0; drop < joined.size(); ++drop) {
          // subset = joined minus element `drop`.
          if (drop > 0) subset[drop - 1] = joined[drop - 1];
          if (!prev.contains(subset)) {
            all_subsets_present = false;
            break;
          }
        }
        if (all_subsets_present) candidates.insert(std::move(joined));
      }
    }
    if (candidates.empty()) break;

    // Support counting: enumerate size-k subsets of each transaction and
    // count hits against the candidate set.
    std::map<ItemSet, std::int64_t> counts;
    ItemSet scratch;
    scratch.reserve(k);
    for (const Transaction& txn : transactions) {
      if (txn.size() < k) continue;
      ForEachSubset(txn, k, 0, scratch, [&](const ItemSet& subset) {
        if (candidates.contains(subset)) ++counts[subset];
      });
    }

    std::vector<ItemSet> next;
    for (const auto& [items, support] : counts) {
      if (is_mpattern(items, support)) next.push_back(items);
    }
    std::sort(next.begin(), next.end());
    level = std::move(next);
  }

  std::sort(result.begin(), result.end(), [](const ItemSet& a, const ItemSet& b) {
    if (a.size() != b.size()) return a.size() < b.size();
    return a < b;
  });
  return result;
}

std::vector<ItemSet> MPatternMiner::MineMaximal(
    std::span<const Transaction> transactions) const {
  const std::vector<ItemSet> all = MineAll(transactions);

  // Downward closure: a pattern is non-maximal iff some mined pattern of
  // size+1 contains it, so it suffices to mark the immediate subsets of every
  // pattern.
  std::set<ItemSet> non_maximal;
  for (const ItemSet& p : all) {
    if (p.size() < 2) continue;
    ItemSet subset(p.begin() + 1, p.end());
    for (std::size_t drop = 0; drop < p.size(); ++drop) {
      if (drop > 0) subset[drop - 1] = p[drop - 1];
      non_maximal.insert(subset);
    }
  }

  std::vector<ItemSet> maximal;
  for (const ItemSet& p : all) {
    if (!non_maximal.contains(p)) maximal.push_back(p);
  }
  return maximal;
}

}  // namespace aer
