// Figure 9: "Total time cost of trained policy under different tests" —
// total downtime (millions of seconds) of the user-defined policy vs the
// trained policy on each test's held-out log, counting only the processes
// the trained policy handles (the paper's accounting). The paper's trained
// policy saves >10% in all four tests; test 2 (40% training) reaches 89.02%.
#include <cstdio>

#include "bench_common.h"
#include "eval/bootstrap.h"

namespace aer::bench {
namespace {

void Run() {
  Header("fig09_trained_total_cost", "Figure 9",
         "Total downtime, user-defined vs trained, tests 1-4 (handled "
         "processes only).");

  const auto& results = GetExperimentResults();
  std::vector<std::string> labels;
  ChartSeries user{"user-defined", {}};
  ChartSeries trained{"trained", {}};
  for (std::size_t i = 0; i < results.size(); ++i) {
    labels.push_back(StrFormat("test %zu", i + 1));
    user.values.push_back(results[i].trained.total_actual_cost / 1e6);
    trained.values.push_back(results[i].trained.total_policy_cost / 1e6);
  }
  Report("fig09_trained_total_cost", "test (Msec)", labels, {user, trained});

  for (std::size_t i = 0; i < results.size(); ++i) {
    const BootstrapInterval ci =
        BootstrapRatioCI(results[i].trained.samples);
    std::printf("test %zu (train %.0f%%): trained policy costs %.2f%% of the "
                "user-defined policy (95%% CI %.2f-%.2f%%)\n",
                i + 1, 100.0 * results[i].train_fraction,
                100.0 * results[i].trained.overall_relative_cost,
                100.0 * ci.low, 100.0 * ci.high);
  }
  std::printf("paper: >10%% savings in all four tests; 89.02%% at 40%% "
              "training.\n");
  Footer();
}

}  // namespace
}  // namespace aer::bench

int main() {
  aer::bench::Run();
  return 0;
}
