// Fleet-scale bench (not a paper figure): throughput and footprint of the
// sharded timing-wheel engine (docs/FLEET_SIM.md) on a million-machine
// fleet.
//
// Two arms — a 10k-machine reference and the 10^6-machine scale run — both
// on the sharded engine with the shard count pinned (so the aer_fleet_*
// registry mirror is reproducible across hosts). The full RecoveryLog of
// every arm is folded into the output checksum entry by entry: the baseline
// compare catches any numeric drift in the engine, not just in the summary
// counters. Machine-events/sec and peak RSS are the wall-clock metrics;
// only the former enters the baseline (as a throughput gate), RSS is
// informational.
//
// AER_SCALE (or --smoke, which forces the small sizing) picks the simulated
// duration; the fleet sizes never shrink — the smoke leg still runs the
// million-machine arm, just over fewer simulated days.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "bench_common.h"
#include "bench_json.h"
#include "cluster/fault_catalog.h"
#include "cluster/user_policy.h"
#include "fleet/fleet_sim.h"
#include "obs/metrics.h"

namespace aer::bench {
namespace {

struct Arm {
  std::string name;
  int machines = 0;
  SimTime duration = 0;
};

// Process peak RSS in MiB (0 where getrusage is unavailable).
std::int64_t PeakRssMb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return usage.ru_maxrss / (1024 * 1024);  // bytes
#else
  return usage.ru_maxrss / 1024;  // kilobytes
#endif
#else
  return 0;
#endif
}

// Folds every log entry into the bench checksum as a fixed-width binary
// record — field by field, no padding bytes, so the digest is a pure
// function of the entry sequence.
void FoldLog(BenchRecord& record, const RecoveryLog& log) {
  for (const LogEntry& entry : log.entries()) {
    const std::uint64_t packed[3] = {
        static_cast<std::uint64_t>(entry.time),
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(entry.machine))
         << 32) |
            static_cast<std::uint32_t>(entry.kind),
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(entry.symptom))
         << 32) |
            static_cast<std::uint32_t>(entry.action),
    };
    record.FoldChecksum(std::string_view(
        reinterpret_cast<const char*>(packed), sizeof(packed)));
  }
}

void Run(bool smoke) {
  Header("fleet_scale", "fleet simulator (not a paper figure)",
         "Machine-events/sec and peak RSS of the sharded timing-wheel "
         "engine on a million-machine fleet.");

  const char* scale = std::getenv("AER_SCALE");
  const bool small =
      smoke || (scale != nullptr && std::strcmp(scale, "small") == 0);
  const bool large = !small && scale != nullptr &&
                     std::strcmp(scale, "large") == 0;
  // Simulated days per arm; fleet sizes are fixed (see file comment).
  const SimTime ref_days = small ? 10 : large ? 180 : 60;
  const SimTime scale_days = small ? 2 : large ? 30 : 8;
  const std::vector<Arm> arms = {
      {"10k machines", 10000, ref_days * kDay},
      {"1M machines", 1000000, scale_days * kDay},
  };

  const FaultCatalog catalog = MakeDefaultCatalog();
  obs::MetricsRegistry registry;
  BenchRecord& record = BenchRecord::Instance();

  std::vector<std::string> labels;
  ChartSeries completed{"processes completed", {}};
  ChartSeries skipped{"arrivals skipped", {}};
  ChartSeries downtime{"downtime (days)", {}};
  ChartSeries log_entries{"log entries", {}};
  double scale_events_per_sec = 0.0;
  double total_wall_ms = 0.0;
  for (const Arm& arm : arms) {
    fleet::FleetSimConfig config;
    config.sim.num_machines = arm.machines;
    config.sim.duration = arm.duration;
    config.sim.machine_mtbf_days = 10.0;
    config.sim.machine_speed_spread = 0.2;
    config.sim.diurnal_amplitude = 0.3;
    config.sim.seed = 4242;
    config.num_shards = 64;  // pinned: keeps aer_fleet_shards reproducible

    fleet::FleetSimulator sim(config, catalog);
    sim.SetMetrics(&registry);
    const std::int64_t events_before =
        registry.GetCounter("aer_fleet_events_total").value();

    UserDefinedPolicy policy;
    const auto start = std::chrono::steady_clock::now();
    const SimulationResult result = sim.Run(policy, &GetPool());
    const double wall_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    total_wall_ms += wall_ms;
    const std::int64_t events =
        registry.GetCounter("aer_fleet_events_total").value() - events_before;
    const double events_per_sec =
        wall_ms > 0.0 ? static_cast<double>(events) / (wall_ms / 1000.0)
                      : 0.0;
    if (arm.machines == 1000000) scale_events_per_sec = events_per_sec;

    FoldLog(record, result.log);
    labels.push_back(arm.name);
    completed.values.push_back(
        static_cast<double>(result.processes_completed));
    skipped.values.push_back(
        static_cast<double>(result.fault_arrivals_skipped));
    downtime.values.push_back(static_cast<double>(result.total_downtime) /
                              kDay);
    log_entries.values.push_back(static_cast<double>(result.log.size()));
    std::printf("  %-13s %lld days: %lld events in %.0f ms "
                "(%.2fM events/sec), %lld processes, %zu log entries\n",
                arm.name.c_str(),
                static_cast<long long>(arm.duration / kDay),
                static_cast<long long>(events), wall_ms,
                events_per_sec / 1e6,
                static_cast<long long>(result.processes_completed),
                result.log.size());
  }
  Report("bench_fleet_scale", "fleet", labels,
         {completed, skipped, downtime, log_entries});

  const std::int64_t rss_mb = PeakRssMb();
  record.RecordRegistrySnapshot(registry);
  record.SetMetric("events_per_sec", scale_events_per_sec);
  record.SetMetric("fleet_wall_ms", total_wall_ms);
  record.SetIntMetric("peak_rss_mb", rss_mb);

  std::printf("\n1M-machine arm: %.2fM machine-events/sec; peak RSS "
              "%lld MiB.\n",
              scale_events_per_sec / 1e6, static_cast<long long>(rss_mb));
  Footer();
}

}  // namespace
}  // namespace aer::bench

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--smoke") smoke = true;
  }
  aer::bench::Run(smoke);
  return 0;
}
