#!/usr/bin/env python3
"""Run the bench suite and aggregate the BENCH_*.json records.

Every bench binary emits one BENCH_<name>.json (see bench/bench_json.h) with
its wall time, an FNV-1a checksum over its reported series, and bench-specific
metrics such as episodes/sec. This driver runs the whole suite, collects the
records into <out>/BENCH_ALL.json, and optionally compares against a recorded
baseline — failing on checksum drift (the numbers changed) or on an
episodes/sec regression beyond the threshold (the engine got slower).

Typical usage (from the repo root, after a Release build into ./build):

  bench/run_all.py --smoke                         # quick pass, small scale
  bench/run_all.py --smoke --compare bench/baselines/smoke.json
  bench/run_all.py --smoke --update-baseline bench/baselines/smoke.json
  bench/run_all.py --smoke --trend                 # append perf-trend rows

Checksums are a pure function of (code, AER_SCALE, seeds) — independent of
thread count and wall time — so comparing them across commits detects silent
numeric drift. Wall-time metrics never enter the baseline.
"""

import argparse
import json
import os
import stat
import subprocess
import sys
import time
from pathlib import Path

# Benches that need extra flags to finish quickly in --smoke mode.
SMOKE_EXTRA_ARGS = {
    "micro_benchmarks": ["--benchmark_min_time=0.05"],
    # Keeps the million-machine arm but shrinks the simulated duration
    # (equivalent to AER_SCALE=small; the flag makes the leg self-contained).
    "bench_fleet_scale": ["--smoke"],
}

# Metrics worth pinning in a baseline: deterministic counters and the
# throughput figures the CI gate watches. Wall-clock metrics are excluded —
# they vary run to run and machine to machine.
BASELINE_METRIC_KEYS = ("episodes", "types")
THROUGHPUT_PREFIXES = ("episodes_per_sec", "events_per_sec")
# Deterministic sim-time latencies trended alongside throughput: the
# control-plane takeover latency and its critical-path stage attribution
# (bench_ctrl, docs/OBSERVABILITY.md "Distributed tracing").
TREND_LATENCY_PREFIXES = ("takeover_",)
# Observability counters mirrored from a MetricsRegistry snapshot
# (bench_json RecordRegistrySnapshot). Deterministic by contract
# (docs/OBSERVABILITY.md), so they are compared exactly like checksums.
OBS_METRIC_PREFIX = "aer_"


def discover_benches(build_dir: Path) -> list[Path]:
    bench_dir = build_dir / "bench"
    if not bench_dir.is_dir():
        sys.exit(f"run_all: no bench binaries at {bench_dir} — build first "
                 f"(cmake -B {build_dir} -S . && cmake --build {build_dir})")
    found = []
    for path in sorted(bench_dir.iterdir()):
        if not path.is_file() or path.suffix:
            continue
        if path.stat().st_mode & stat.S_IXUSR:
            found.append(path)
    if not found:
        sys.exit(f"run_all: {bench_dir} contains no executable benches")
    return found


def run_bench(binary: Path, out_dir: Path, env: dict, smoke: bool,
              log_dir: Path) -> tuple[bool, float]:
    args = [str(binary)]
    if smoke:
        args += SMOKE_EXTRA_ARGS.get(binary.name, [])
    log_path = log_dir / f"{binary.name}.log"
    start = time.monotonic()
    with open(log_path, "w") as log:
        proc = subprocess.run(args, env=env, stdout=log,
                              stderr=subprocess.STDOUT)
    elapsed = time.monotonic() - start
    if proc.returncode != 0:
        print(f"  FAIL {binary.name} (exit {proc.returncode}, "
              f"see {log_path})")
        return False, elapsed
    print(f"  ok   {binary.name:32s} {elapsed:7.1f}s")
    return True, elapsed


def collect_records(out_dir: Path) -> dict:
    records = {}
    for path in sorted(out_dir.glob("BENCH_*.json")):
        if path.name == "BENCH_ALL.json":
            continue
        with open(path) as f:
            record = json.load(f)
        records[record["name"]] = record
    return records


def baseline_view(records: dict) -> dict:
    """The comparable subset of the records: checksums + pinned metrics."""
    view = {}
    for name, record in sorted(records.items()):
        entry = {"checksum": record["checksum"], "scale": record["scale"]}
        metrics = {}
        for key, value in record.get("metrics", {}).items():
            if key in BASELINE_METRIC_KEYS or key.startswith(
                    THROUGHPUT_PREFIXES + (OBS_METRIC_PREFIX,)):
                metrics[key] = value
        if metrics:
            entry["metrics"] = metrics
        view[name] = entry
    return view


def compare(records: dict, baseline_path: Path, threshold: float) -> list:
    with open(baseline_path) as f:
        baseline = json.load(f)
    errors = []
    for name, expected in sorted(baseline.get("benches", {}).items()):
        record = records.get(name)
        if record is None:
            errors.append(f"{name}: present in baseline but not run")
            continue
        if record["scale"] != expected.get("scale", record["scale"]):
            errors.append(f"{name}: scale mismatch ({record['scale']} vs "
                          f"baseline {expected['scale']}) — rerun at the "
                          f"baseline's scale")
            continue
        if record["checksum"] != expected["checksum"]:
            errors.append(f"{name}: checksum drift {expected['checksum']} -> "
                          f"{record['checksum']} (output numbers changed)")
        for key, base_value in expected.get("metrics", {}).items():
            value = record.get("metrics", {}).get(key)
            if value is None:
                errors.append(f"{name}: metric {key} missing from run")
            elif (key in BASELINE_METRIC_KEYS or
                  key.startswith(OBS_METRIC_PREFIX)) and value != base_value:
                errors.append(f"{name}: {key} changed {base_value} -> {value}")
            elif key.startswith(THROUGHPUT_PREFIXES) and \
                    value < base_value * (1.0 - threshold):
                errors.append(
                    f"{name}: {key} regressed {base_value:.0f} -> "
                    f"{value:.0f} /s (> {threshold:.0%} below baseline)")
    return errors


def git_commit() -> str:
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True,
            cwd=Path(__file__).resolve().parent)
    except OSError:
        return "unknown"
    return proc.stdout.strip() if proc.returncode == 0 else "unknown"


def append_trend(records: dict, trend_path: Path) -> None:
    """Appends one JSONL row per bench: wall time and throughput over time.

    Unlike the baseline (one pinned snapshot, overwritten on update), the
    trend file only ever grows — each row is stamped with the commit and UTC
    time, so plotting wall_ms / episodes_per_sec per bench across rows gives
    the repo's perf trajectory. Wall times are machine-dependent; rows from
    different machines are distinguishable only by their commit, so trends
    are most meaningful from a stable runner (the bench-smoke CI leg).
    """
    stamp = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    commit = git_commit()
    trend_path.parent.mkdir(parents=True, exist_ok=True)
    with open(trend_path, "a") as f:
        for name, record in sorted(records.items()):
            row = {
                "utc": stamp,
                "commit": commit,
                "bench": name,
                "scale": record["scale"],
                "threads": record.get("threads"),
                "wall_ms": record.get("wall_ms"),
            }
            for key, value in sorted(record.get("metrics", {}).items()):
                if key.startswith(THROUGHPUT_PREFIXES + TREND_LATENCY_PREFIXES):
                    row[key] = value
            f.write(json.dumps(row) + "\n")
    print(f"run_all: appended {len(records)} trend rows -> {trend_path}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", type=Path, default=Path("build"),
                        help="CMake build tree with bench/ binaries")
    parser.add_argument("--out-dir", type=Path, default=Path("bench_out"),
                        help="where BENCH_*.json and logs are written")
    parser.add_argument("--smoke", action="store_true",
                        help="quick pass: AER_SCALE=small + per-bench "
                             "smoke flags")
    parser.add_argument("--only", default=None,
                        help="run only benches whose name contains this "
                             "substring")
    parser.add_argument("--compare", type=Path, default=None,
                        help="baseline JSON to compare against; exit 1 on "
                             "checksum drift or throughput regression")
    parser.add_argument("--regression-threshold", type=float, default=0.30,
                        help="allowed fractional episodes/sec drop vs "
                             "baseline (default 0.30)")
    parser.add_argument("--update-baseline", type=Path, default=None,
                        help="write the comparable subset of this run's "
                             "records to the given baseline file")
    parser.add_argument("--trend", type=Path, nargs="?", default=None,
                        const=Path("bench/baselines/trend.jsonl"),
                        help="append per-bench wall_ms and episodes/sec "
                             "rows to this JSONL file (default "
                             "bench/baselines/trend.jsonl)")
    args = parser.parse_args()

    out_dir = args.out_dir.resolve()
    out_dir.mkdir(parents=True, exist_ok=True)
    for stale in out_dir.glob("BENCH_*.json"):
        stale.unlink()

    env = dict(os.environ)
    env["AER_BENCH_JSON_DIR"] = str(out_dir)
    env.pop("AER_CSV_DIR", None)  # CSV mirroring is a separate workflow
    if args.smoke:
        env["AER_SCALE"] = "small"

    benches = discover_benches(args.build_dir)
    if args.only:
        benches = [b for b in benches if args.only in b.name]
        if not benches:
            sys.exit(f"run_all: no bench matches --only {args.only}")

    scale = env.get("AER_SCALE", "default")
    print(f"run_all: {len(benches)} benches, scale={scale}, out={out_dir}")
    failures = []
    total = 0.0
    for binary in benches:
        ok, elapsed = run_bench(binary, out_dir, env, args.smoke, out_dir)
        total += elapsed
        if not ok:
            failures.append(binary.name)

    records = collect_records(out_dir)
    aggregate = {
        "scale": scale,
        "total_wall_s": round(total, 1),
        "failed": failures,
        "benches": records,
    }
    all_path = out_dir / "BENCH_ALL.json"
    with open(all_path, "w") as f:
        json.dump(aggregate, f, indent=2, sort_keys=False)
        f.write("\n")
    print(f"run_all: {len(records)} records -> {all_path} "
          f"({total:.1f}s total)")

    if failures:
        print(f"run_all: FAILED benches: {', '.join(failures)}")
        return 1

    if args.trend:
        append_trend(records, args.trend)

    if args.update_baseline:
        baseline = {"scale": scale, "benches": baseline_view(records)}
        args.update_baseline.parent.mkdir(parents=True, exist_ok=True)
        with open(args.update_baseline, "w") as f:
            json.dump(baseline, f, indent=2)
            f.write("\n")
        print(f"run_all: baseline updated -> {args.update_baseline}")

    if args.compare:
        errors = compare(records, args.compare, args.regression_threshold)
        if errors:
            print("run_all: baseline comparison FAILED:")
            for error in errors:
                print(f"  - {error}")
            return 1
        print(f"run_all: baseline comparison passed ({args.compare})")

    return 0


if __name__ == "__main__":
    sys.exit(main())
