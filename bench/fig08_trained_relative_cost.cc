// Figure 8: "Relative time cost for trained policy compared to real one" —
// per error type, the RL-trained policy's estimated cost on the held-out log
// divided by the actual logged cost, for the four training fractions
// (tests 1-4). Most types sit near 1.0 (the user-defined policy was already
// good); a few — the stronger-action-first types, the paper's 1/35/39 —
// drop to roughly half. Unhandled cases are excluded on both sides.
#include <cstdio>

#include "bench_common.h"

namespace aer::bench {
namespace {

void Run() {
  Header("fig08_trained_relative_cost", "Figure 8",
         "Trained-policy relative cost per error type, training fractions "
         "0.2/0.4/0.6/0.8.");

  const auto& results = GetExperimentResults();
  const std::size_t n = results.front().trained.rows.size();

  std::vector<ChartSeries> series;
  for (const ExperimentResult& r : results) {
    ChartSeries s{StrFormat("%.1f", r.train_fraction), {}};
    for (const TypeEvalRow& row : r.trained.rows) {
      s.values.push_back(row.relative_cost);
    }
    series.push_back(std::move(s));
  }
  Report("fig08_trained_relative_cost", "type", TypeLabels(n), series);

  // Call out the strongly-improved types at fraction 0.4 (the paper names
  // types 1, 35 and 39).
  std::printf("strongly improved types at training fraction 0.4 "
              "(relative cost < 0.8):\n");
  for (const TypeEvalRow& row : results[1].trained.rows) {
    if (row.handled >= 10 && row.relative_cost < 0.8) {
      std::printf("  type %2d: relative cost %.3f over %lld handled "
                  "processes\n",
                  row.type + 1, row.relative_cost,
                  static_cast<long long>(row.handled));
    }
  }
  std::printf("paper: types 1, 35, 39 reduced to roughly half; most types "
              "~1.0 with small simulation error.\n");
  Footer();
}

}  // namespace
}  // namespace aer::bench

int main() {
  aer::bench::Run();
  return 0;
}
