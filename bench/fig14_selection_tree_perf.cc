// Figure 14: "Performance comparison between optimized training method and
// standard method" — per error type, the relative cost (on the held-out
// log) of the policy generated with the selection tree vs the policy from
// standard greedy extraction, both trained on 40% of the log with the same
// 160k-sweep cap. In the paper the standard method's non-converged types
// show relative cost up to ~2; the tree stays at or below the original.
#include <cstdio>

#include "bench_common.h"

namespace aer::bench {
namespace {

void Run() {
  Header("fig14_selection_tree_perf", "Figure 14 (Section 5.3)",
         "Relative cost per type: selection-tree policies vs standard-RL "
         "policies (train fraction 0.4).");

  const BenchDataset& dataset = GetDataset();
  ExperimentConfig with_tree = DefaultExperimentConfig();
  with_tree.trainer.max_sweeps = 160000;
  with_tree.train_fractions = {0.4};

  ExperimentConfig without_tree = with_tree;
  without_tree.use_selection_tree = false;
  without_tree.trainer.check_every = 500;
  without_tree.trainer.stable_checks = 10;

  const ExperimentRunner runner_tree(
      dataset.clean, dataset.trace.result.log.symptoms(), with_tree);
  const ExperimentRunner runner_plain(
      dataset.clean, dataset.trace.result.log.symptoms(), without_tree);
  const ExperimentResult tree = runner_tree.RunOne(0.4, &GetPool());
  const ExperimentResult plain = runner_plain.RunOne(0.4, &GetPool());

  const std::size_t n = tree.trained.rows.size();
  ChartSeries with_s{"with tree", {}};
  ChartSeries without_s{"without tree", {}};
  for (std::size_t t = 0; t < n; ++t) {
    with_s.values.push_back(tree.trained.rows[t].relative_cost);
    without_s.values.push_back(plain.trained.rows[t].relative_cost);
  }
  Report("fig14_selection_tree_perf", "type", TypeLabels(n),
         {with_s, without_s});

  std::printf("overall relative cost: with tree %.4f, without %.4f\n",
              tree.trained.overall_relative_cost,
              plain.trained.overall_relative_cost);
  std::printf("paper: standard training leaves some types at relative cost "
              "well above 1 (up to ~2); the tree-generated policies do "
              "not.\n");
  Footer();
}

}  // namespace
}  // namespace aer::bench

int main() {
  aer::bench::Run();
  return 0;
}
