// Figure 3: "Symptom sets extracted from recovery log" — the fraction of
// recovery processes whose symptoms form a single highly-dependent set, as
// the m-pattern dependence strength minp sweeps 0.1..1.0. The paper reads
// ~0.97 at minp = 0.1 (96.67% of its log), declining gently toward ~0.8.
#include <cstdio>

#include "bench_common.h"

namespace aer::bench {
namespace {

void Run() {
  Header("fig03_symptom_sets", "Figure 3 (and Section 3.1's 96.67%/119 clusters)",
         "Cohesive-process fraction vs m-pattern dependence strength minp.");

  const BenchDataset& dataset = GetDataset();
  std::vector<std::string> labels;
  ChartSeries fraction{"cohesive", {}};
  std::vector<double> cluster_counts;
  for (int i = 1; i <= 10; ++i) {
    const double minp = 0.1 * i;
    MPatternConfig config;
    config.minp = minp;
    const SymptomClustering clustering(dataset.all, config);
    labels.push_back(StrFormat("%.1f", minp));
    fraction.values.push_back(clustering.CohesiveFraction(dataset.all));
    cluster_counts.push_back(static_cast<double>(clustering.clusters().size()));
  }

  Report("fig03_symptom_sets", "minp", labels,
         {fraction, {"clusters", cluster_counts}});

  std::printf("paper: 119 symptom clusters covering 96.67%% at minp = 0.1; "
              "the rest (3.33%%) is filtered as noise.\n");
  std::printf("ours:  %3zu symptom clusters covering %.2f%% at minp = 0.1.\n",
              dataset.clusters, 100.0 * dataset.cohesive_fraction);
  Footer();
}

}  // namespace
}  // namespace aer::bench

int main() {
  aer::bench::Run();
  return 0;
}
