// Control-plane bench (not a paper figure): election throughput and
// takeover latency of the distributed recovery control plane
// (docs/CONTROL_PLANE.md).
//
// Three arms on the deterministic sim:
//   - steady state at cluster sizes 1/3/5 (same incidents, same cures —
//     the takeover-determinism contract),
//   - leader crash mid-recovery (takeover latency = crash to the
//     successor's first dispatch, in sim-time),
//   - symmetric partition isolating the leader.
// Sim-time outcomes (cures, end times, takeover latency) go through
// Report() into the output checksum; the registry snapshot mirrors every
// aer_ctrl_*/aer_inject_* counter into the baseline. Elections/sec is the
// one wall-clock metric and stays out of the baseline by design.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "bench_json.h"
#include "cluster/user_policy.h"
#include "ctrl/harness.h"
#include "obs/chrome_trace.h"
#include "obs/critical_path.h"
#include "obs/metrics.h"
#include "obs/trace_collector.h"
#include "obs/trace_dag.h"

namespace aer::bench {
namespace {

ctrl::ControlHarnessConfig FastConfig(int cluster_size) {
  ctrl::ControlHarnessConfig config;
  config.cluster_size = cluster_size;
  config.tick_interval = 5;
  config.net_latency = 1;
  config.reemit_interval = 60;
  config.action_duration = {2, 5, 10, 20};
  config.coordinator.lease.lease_duration = 30;
  config.coordinator.membership.suspect_after = 15;
  config.coordinator.membership.evict_after = 60;
  return config;
}

std::vector<ctrl::ControlIncident> Incidents() {
  return {
      {20, 1, "Watchdog", 0},
      {35, 2, "NoHeartbeat", 2},
      {40, 3, "Watchdog", 1},
      {220, 4, "Watchdog", 1},
      {400, 5, "NoHeartbeat", 3},
  };
}

ctrl::ControlHarnessResult RunOnce(int cluster_size, NetFaultScript script,
                                   obs::MetricsRegistry* registry,
                                   obs::TraceCollector* traces = nullptr) {
  UserDefinedPolicy policy;
  RecoveryManagerConfig manager_config;
  manager_config.action_timeout = 120;
  ctrl::ControlPlaneHarness harness(policy, manager_config,
                                    FastConfig(cluster_size),
                                    std::move(script));
  if (registry != nullptr) harness.SetObservers(nullptr, registry);
  if (traces != nullptr) harness.SetTraceCollector(traces);
  return harness.Run(Incidents());
}

// Sim-time from the scripted leader crash to the successor's first
// dispatch — the window in which in-flight recoveries have no owner.
SimTime TakeoverLatency(const ctrl::ControlHarnessResult& result,
                        SimTime crash_at) {
  for (const ctrl::DispatchRecord& dispatch : result.dispatch_log) {
    if (dispatch.issuer != 0) return dispatch.time - crash_at;
  }
  return -1;
}

void Run() {
  Header("ctrl", "control plane (not a paper figure)",
         "Quorum-lease elections/sec and leader-takeover latency on the "
         "deterministic control-plane sim.");

  const char* scale = std::getenv("AER_SCALE");
  const int reps = (scale != nullptr && std::string(scale) == "small")
                       ? 20
                       : 200;

  struct Arm {
    std::string name;
    int cluster_size = 3;
    NetFaultScript script;
    SimTime crash_at = -1;  // >= 0: measure takeover latency from here
  };
  std::vector<Arm> arms;
  for (int n : {1, 3, 5}) {
    arms.push_back({"steady n=" + std::to_string(n), n, {}, -1});
  }
  {
    // The crash lands while machines 2 and 3 are mid-ladder, so their
    // in-flight actions lose their issuer and the successor must adopt and
    // resume — the scenario the takeover_gap stage attributes.
    Arm takeover{"takeover n=3", 3, {}, 45};
    takeover.script.crashes.push_back({45, 0, 300});
    arms.push_back(std::move(takeover));
  }
  {
    Arm partition{"partition n=3", 3, {}, 60};
    LinkPartition cut;
    cut.from = 60;
    cut.until = 100000;  // never heals within the run
    cut.side_a = {0};
    cut.side_b = {1, 2};
    partition.script.partitions.push_back(cut);
    arms.push_back(std::move(partition));
  }

  obs::MetricsRegistry registry;
  // Causal trace of the takeover arm's observed run: the critical-path
  // attribution below turns the headline takeover latency into named stages
  // (docs/OBSERVABILITY.md "Distributed tracing").
  obs::TraceCollector takeover_traces;
  takeover_traces.SetMetrics(&registry);
  std::vector<std::string> labels;
  ChartSeries cures{"incidents cured", {}};
  ChartSeries end_time{"sim end time", {}};
  ChartSeries takeover_latency{"takeover latency (sim s)", {}};
  std::int64_t elections = 0;
  double wall_ms = 0.0;
  SimTime crash_takeover_latency = 0;
  for (const Arm& arm : arms) {
    // One observed run for the registry + determinism surfaces...
    const ctrl::ControlHarnessResult result = RunOnce(
        arm.cluster_size, arm.script, &registry,
        arm.name == "takeover n=3" ? &takeover_traces : nullptr);
    // ...then unobserved repetitions for a measurable wall time.
    const auto start = std::chrono::steady_clock::now();
    std::int64_t arm_elections = result.coordinators.elections_started;
    for (int rep = 1; rep < reps; ++rep) {
      const ctrl::ControlHarnessResult timed =
          RunOnce(arm.cluster_size, arm.script, nullptr);
      arm_elections += timed.coordinators.elections_started;
    }
    wall_ms += std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - start)
                   .count();
    elections += arm_elections;

    const SimTime latency =
        arm.crash_at >= 0 ? TakeoverLatency(result, arm.crash_at) : 0;
    if (arm.name == "takeover n=3") crash_takeover_latency = latency;
    labels.push_back(arm.name);
    cures.values.push_back(static_cast<double>(result.cures));
    end_time.values.push_back(static_cast<double>(result.end_time));
    takeover_latency.values.push_back(static_cast<double>(latency));
    std::printf("  %-14s cures %lld/%zu, end %lld, takeover +%lld, "
                "audit %s\n",
                arm.name.c_str(), static_cast<long long>(result.cures),
                Incidents().size(), static_cast<long long>(result.end_time),
                static_cast<long long>(latency),
                result.audit.Clean() ? "clean" : "VIOLATED");
  }
  Report("bench_ctrl", "arm", labels, {cures, end_time, takeover_latency});

  const double elections_per_sec =
      wall_ms > 0.0 ? static_cast<double>(elections) / (wall_ms / 1000.0)
                    : 0.0;
  // Critical-path attribution of the takeover arm: per-stage sim-time of
  // every cure lands in the aer_trace_* histograms (and through the
  // registry snapshot, in the baseline), and the two control-plane stages
  // behind the headline takeover latency become their own trend metrics.
  const std::vector<obs::TraceRecord> takeover_records =
      takeover_traces.Snapshot();
  const std::vector<obs::CriticalPath> takeover_paths =
      obs::AnalyzeCriticalPaths(takeover_records);
  obs::PublishCriticalPathMetrics(registry, takeover_paths);
  SimTime takeover_gap = 0;
  SimTime election_wait = 0;
  for (const obs::CriticalPath& path : takeover_paths) {
    takeover_gap += path.stage_seconds[static_cast<std::size_t>(
        obs::TraceStage::kTakeoverGap)];
    election_wait += path.stage_seconds[static_cast<std::size_t>(
        obs::TraceStage::kElectionWait)];
  }

  BenchRecord& record = BenchRecord::Instance();
  record.RecordRegistrySnapshot(registry);
  record.SetMetric("elections_per_sec", elections_per_sec);
  record.SetMetric("ctrl_wall_ms", wall_ms);
  record.SetIntMetric("takeover_latency_sim_seconds",
                      crash_takeover_latency);
  record.SetIntMetric("takeover_stage_takeover_gap_sim_seconds",
                      takeover_gap);
  record.SetIntMetric("takeover_stage_election_wait_sim_seconds",
                      election_wait);

  // One loadable Chrome trace of the takeover arm rides along with the
  // BENCH_*.json records (the CI bench job uploads it). The TRACE_ prefix
  // keeps it out of run_all.py's BENCH_*.json glob.
  const char* artifact_env = std::getenv("AER_BENCH_JSON_DIR");
  const std::string artifact_dir =
      artifact_env != nullptr ? artifact_env : ".";
  if (artifact_dir != "off") {
    std::ofstream out(artifact_dir + "/TRACE_ctrl_takeover.chrome.json");
    if (out.good()) {
      out << obs::ChromeTraceJson(obs::BuildTraceDag(takeover_records),
                                  takeover_paths);
    }
  }

  std::printf("\n%d reps/arm: %.1f ms wall, %.0f elections/sec; leader "
              "takeover resumed in-flight recovery %lld sim-seconds after "
              "the crash (suspect timeout + promise expiry + one election "
              "round).\n",
              reps, wall_ms, elections_per_sec,
              static_cast<long long>(crash_takeover_latency));
  Footer();
}

}  // namespace
}  // namespace aer::bench

int main() {
  aer::bench::Run();
  return 0;
}
