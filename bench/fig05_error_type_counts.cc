// Figure 5: "Count of 40 most frequent error types" — the long-tailed
// frequency distribution of induced error types (initial symptoms) after
// noise filtering, plus Section 4.1's headline numbers: ~97 observed error
// types, top 40 covering 98.68% of recovery processes.
#include <cstdio>

#include "bench_common.h"
#include "log/log_stats.h"
#include "mining/error_type.h"

namespace aer::bench {
namespace {

void Run() {
  Header("fig05_error_type_counts", "Figure 5 (and Section 4.1)",
         "Process count per error type, 40 most frequent types.");

  const BenchDataset& dataset = GetDataset();
  const std::vector<ErrorTypeStat> ranked = RankErrorTypes(dataset.clean);
  const TopTypesSelection top40 = SelectTopTypes(dataset.clean, 40);

  const std::size_t n = std::min<std::size_t>(40, ranked.size());
  ChartSeries counts{"count", {}};
  for (std::size_t i = 0; i < n; ++i) {
    counts.values.push_back(static_cast<double>(ranked[i].process_count));
  }
  Report("fig05_error_type_counts", "type", TypeLabels(n), {counts});

  std::printf("paper: 97 error types after noise filtering; top 40 cover "
              "98.68%% of processes.\n");
  std::printf("ours:  %zu error types after noise filtering; top 40 cover "
              "%.2f%% of processes.\n",
              ranked.size(), 100.0 * top40.process_coverage);
  Footer();
}

}  // namespace
}  // namespace aer::bench

int main() {
  aer::bench::Run();
  return 0;
}
