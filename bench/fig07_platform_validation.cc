// Figure 7: "Relative cost for 40 most frequent errors compared to real
// ones" — validation of the simulation platform: replay the user-defined
// policy on the log it produced and compare the estimated cost against the
// actual downtime, per error type. The paper's biggest deviation is below
// 5%, conservative (ratio >= 1) for all but one type.
#include <cstdio>

#include "bench_common.h"
#include "cluster/user_policy.h"
#include "mining/error_type.h"
#include "sim/platform.h"

namespace aer::bench {
namespace {

void Run() {
  Header("fig07_platform_validation", "Figure 7 (and Section 4.2)",
         "Estimated / actual cost per type when replaying the user-defined "
         "policy on its own log.");

  const BenchDataset& dataset = GetDataset();
  const ErrorTypeCatalog types(dataset.clean, 40);
  const SimulationPlatform platform(dataset.clean, types,
                                    dataset.trace.result.log.symptoms());
  UserDefinedPolicy policy;
  const auto rows = platform.ValidateAgainstLog(dataset.clean, policy);

  ChartSeries ratio{"est/actual", {}};
  std::vector<std::string> labels;
  double worst = 0.0;
  int below_one = 0;
  for (const auto& row : rows) {
    labels.push_back(StrFormat("%2d", row.type + 1));
    ratio.values.push_back(row.ratio);
    if (row.process_count == 0) continue;
    worst = std::max(worst, std::abs(row.ratio - 1.0));
    if (row.ratio < 1.0) ++below_one;
  }
  Report("fig07_platform_validation", "type", labels, {ratio});

  std::printf("paper: biggest deviation < 5%%; only one type slightly below "
              "1.0 (conservative evaluation).\n");
  std::printf("ours:  biggest deviation = %.2f%%; %d of %zu types below "
              "1.0.\n",
              100.0 * worst, below_one, rows.size());
  Footer();
}

}  // namespace
}  // namespace aer::bench

int main() {
  aer::bench::Run();
  return 0;
}
