#include "bench_json.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/json_writer.h"
#include "common/string_util.h"
#include "common/thread_pool.h"

namespace aer::bench {
namespace {

// FNV-1a 64 — same integrity hash the Q-table checkpoint format uses.
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::string ScaleFromEnv() {
  const char* scale = std::getenv("AER_SCALE");
  return scale != nullptr ? scale : "default";
}

}  // namespace

struct BenchRecord::Impl {
  std::string name;
  std::chrono::steady_clock::time_point start;
  std::uint64_t checksum = kFnvOffset;
  std::vector<std::pair<std::string, JsonValue>> metrics;
  bool begun = false;
  bool finished = false;
};

BenchRecord::BenchRecord() : impl_(new Impl) {}

BenchRecord& BenchRecord::Instance() {
  static BenchRecord* record = new BenchRecord;  // leaked by design
  return *record;
}

void BenchRecord::Begin(std::string_view name) {
  if (impl_->begun) return;
  impl_->begun = true;
  impl_->name = std::string(name);
  impl_->start = std::chrono::steady_clock::now();
}

void BenchRecord::FoldChecksum(std::string_view bytes) {
  std::uint64_t h = impl_->checksum;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  impl_->checksum = h;
}

void BenchRecord::SetMetric(std::string_view key, double value) {
  for (auto& [k, v] : impl_->metrics) {
    if (k == key) {
      v = JsonValue::Number(value);
      return;
    }
  }
  impl_->metrics.emplace_back(std::string(key), JsonValue::Number(value));
}

void BenchRecord::SetIntMetric(std::string_view key, std::int64_t value) {
  for (auto& [k, v] : impl_->metrics) {
    if (k == key) {
      v = JsonValue::Int(value);
      return;
    }
  }
  impl_->metrics.emplace_back(std::string(key), JsonValue::Int(value));
}

void BenchRecord::RecordRegistrySnapshot(const obs::MetricsRegistry& registry) {
  obs::MetricsRegistry::ExportOptions options;
  options.include_volatile = false;
  FoldChecksum(registry.ExportText(options));
  for (const auto& [name, value] : registry.CounterValues()) {
    SetIntMetric(name, value);
  }
}

std::string BenchRecord::ChecksumHex() const {
  return StrFormat("%016llx",
                   static_cast<unsigned long long>(impl_->checksum));
}

void BenchRecord::Finish() {
  if (!impl_->begun || impl_->finished) return;
  impl_->finished = true;

  const char* dir_env = std::getenv("AER_BENCH_JSON_DIR");
  const std::string dir = dir_env != nullptr ? dir_env : ".";
  if (dir == "off") return;

  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - impl_->start)
          .count();

  JsonValue root = JsonValue::Object();
  root.Set("name", JsonValue::String(impl_->name));
  root.Set("scale", JsonValue::String(ScaleFromEnv()));
  root.Set("threads", JsonValue::Int(ThreadPool::DefaultThreadCount()));
  root.Set("wall_ms", JsonValue::Number(wall_ms));
  root.Set("checksum", JsonValue::String(ChecksumHex()));
  JsonValue metrics = JsonValue::Object();
  for (auto& [key, value] : impl_->metrics) {
    metrics.Set(key, std::move(value));
  }
  root.Set("metrics", std::move(metrics));

  const std::string path = dir + "/BENCH_" + impl_->name + ".json";
  std::ofstream out(path);
  if (!out.good()) {
    std::fprintf(stderr, "bench_json: cannot write %s\n", path.c_str());
    return;
  }
  out << root.ToString();
}

}  // namespace aer::bench
