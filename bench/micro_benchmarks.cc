// google-benchmark micro-benchmarks for the hot paths: Q-table operations,
// Boltzmann sampling, process replay steps, trainer sweeps, log
// segmentation, m-pattern mining and log (de)serialization throughput.
#include <sstream>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "bench_json.h"
#include "common/string_util.h"
#include "mining/error_type.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "rl/qlearning.h"

namespace aer::bench {
namespace {

void BM_QTableUpdate(benchmark::State& state) {
  QTable table;
  Rng rng(1);
  std::uint64_t i = 0;
  for (auto _ : state) {
    const StateKey s = i++ % 4096;
    table.Update(s, RepairAction::kReboot, rng.NextDouble() * 1000);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QTableUpdate);

void BM_QTableBestAction(benchmark::State& state) {
  QTable table;
  for (StateKey s = 0; s < 4096; ++s) {
    for (RepairAction a : kAllActions) {
      table.Update(s, a, static_cast<double>(s ^ ActionIndex(a)));
    }
  }
  StateKey s = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.BestAction(s++ % 4096));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QTableBestAction);

void BM_BoltzmannSample(benchmark::State& state) {
  Rng rng(2);
  const std::vector<double> costs = {900.0, 2400.0, 9000.0, 90000.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(SampleBoltzmann(costs, 2000.0, rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BoltzmannSample);

void BM_StateEncode(benchmark::State& state) {
  const std::vector<RepairAction> tried = {
      RepairAction::kTryNop, RepairAction::kReboot, RepairAction::kReboot,
      RepairAction::kReimage};
  for (auto _ : state) {
    benchmark::DoNotOptimize(EncodeState(17, tried));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StateEncode);

void BM_ProcessReplayEpisode(benchmark::State& state) {
  const BenchDataset& dataset = GetDataset();
  const ErrorTypeCatalog types(dataset.clean, 40);
  const CostEstimator estimator(dataset.clean, types);
  // Use the most frequent type's first process.
  const RecoveryProcess* process = nullptr;
  for (const RecoveryProcess& p : dataset.clean) {
    if (types.Classify(p) == 0) {
      process = &p;
      break;
    }
  }
  for (auto _ : state) {
    ProcessReplay replay(*process, 0, estimator);
    replay.Step(RepairAction::kTryNop);
    if (!replay.cured()) replay.Step(RepairAction::kReboot);
    if (!replay.cured()) replay.Step(RepairAction::kReimage);
    benchmark::DoNotOptimize(replay.total_cost());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProcessReplayEpisode);

void BM_TrainerSweeps(benchmark::State& state) {
  const BenchDataset& dataset = GetDataset();
  static const ErrorTypeCatalog types(dataset.clean, 40);
  static const SimulationPlatform platform(
      dataset.clean, types, dataset.trace.result.log.symptoms(), 20);
  TrainerConfig config;
  config.max_sweeps = state.range(0);
  config.min_sweeps = state.range(0);  // run the full budget
  config.stable_checks = 1 << 20;      // never early-stop
  const QLearningTrainer trainer(platform, dataset.clean, config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trainer.TrainType(0));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.counters["sweeps/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * state.range(0)),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TrainerSweeps)->Arg(2000)->Arg(10000);

void BM_LogSegmentation(benchmark::State& state) {
  const BenchDataset& dataset = GetDataset();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SegmentIntoProcesses(dataset.trace.result.log));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(
                              dataset.trace.result.log.size()));
}
BENCHMARK(BM_LogSegmentation);

void BM_MPatternMining(benchmark::State& state) {
  const BenchDataset& dataset = GetDataset();
  const std::vector<Transaction> txns =
      BuildSymptomTransactions(dataset.all);
  MPatternConfig config;
  config.minp = 0.1;
  const MPatternMiner miner(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(miner.MineMaximal(txns));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(txns.size()));
}
BENCHMARK(BM_MPatternMining);

void BM_LogSerializationRoundTrip(benchmark::State& state) {
  const BenchDataset& dataset = GetDataset();
  for (auto _ : state) {
    std::stringstream ss;
    dataset.trace.result.log.Write(ss);
    RecoveryLog parsed;
    benchmark::DoNotOptimize(RecoveryLog::Read(ss, parsed));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(
                              dataset.trace.result.log.size()));
}
BENCHMARK(BM_LogSerializationRoundTrip);

// Observability overhead (docs/OBSERVABILITY.md): the instrumented hot
// paths pay one cached-pointer counter increment or histogram observe per
// event, never a registry lookup — these pin the cost of each.
void BM_ObsCounterInc(benchmark::State& state) {
  obs::MetricsRegistry registry;
  // Throwaway probe name in a private registry, never exported — not a
  // catalog entry.
  obs::Counter& counter = registry.GetCounter(
      "aer_bench_counter");  // aer-lint: allow(metric-catalog)
  for (auto _ : state) {
    counter.Inc();
  }
  benchmark::DoNotOptimize(counter.value());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsCounterInc);

void BM_ObsHistogramObserve(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Histogram& histogram = registry.GetHistogram(
      "aer_bench_histogram");  // aer-lint: allow(metric-catalog)
  std::uint64_t i = 0;
  for (auto _ : state) {
    histogram.Observe(static_cast<double>(i++ % 100000));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsHistogramObserve);

void BM_ObsRegistryLookup(benchmark::State& state) {
  obs::MetricsRegistry registry;
  registry.GetCounter("aer_bench_counter");  // aer-lint: allow(metric-catalog)
  for (auto _ : state) {
    benchmark::DoNotOptimize(&registry.GetCounter(
        "aer_bench_counter"));  // aer-lint: allow(metric-catalog)
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsRegistryLookup);

void BM_ObsSpanLifecycle(benchmark::State& state) {
  obs::Tracer tracer(1024);
  SimTime now = 0;
  for (auto _ : state) {
    const obs::SpanId span = tracer.StartSpan("recovery", now);
    tracer.AddEvent(span, now + 1, "symptom:Watchdog");
    tracer.EndSpan(span, now + 2);
    now += 3;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsSpanLifecycle);

void BM_ObsRegistryExportText(benchmark::State& state) {
  obs::MetricsRegistry registry;
  for (int i = 0; i < 64; ++i) {
    registry.GetCounter(StrFormat("aer_bench_counter_%02d", i)).Inc(i);
  }
  for (int i = 0; i < 8; ++i) {
    obs::Histogram& h =
        registry.GetHistogram(StrFormat("aer_bench_histogram_%d", i));
    for (int j = 0; j < 100; ++j) h.Observe(j * 97.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(registry.ExportText());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsRegistryExportText);

void BM_ClusterSimulation(benchmark::State& state) {
  TraceConfig config = TraceConfigForScale("small");
  config.sim.num_machines = 100;
  config.sim.duration = 30 * kDay;
  for (auto _ : state) {
    benchmark::DoNotOptimize(GenerateTrace(config));
  }
}
BENCHMARK(BM_ClusterSimulation);

// Console output as usual, plus every benchmark's per-iteration real time
// recorded as a "<name>_ns" metric in BENCH_micro_benchmarks.json so
// run_all.py tracks micro-level regressions alongside the figure benches.
class RecordingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    ConsoleReporter::ReportRuns(reports);
    for (const Run& run : reports) {
      if (run.error_occurred || run.iterations <= 0) continue;
      const double ns_per_iter = run.real_accumulated_time /
                                 static_cast<double>(run.iterations) * 1e9;
      BenchRecord::Instance().SetMetric(run.benchmark_name() + "_ns",
                                        ns_per_iter);
    }
  }
};

}  // namespace
}  // namespace aer::bench

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  aer::bench::BenchRecord::Instance().Begin("micro_benchmarks");
  aer::bench::RecordingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  aer::bench::BenchRecord::Instance().Finish();
  return 0;
}
