// Extension: measuring the paper's Section 2.3.1 argument for *offline*
// training. Three arms run the same six-month period online:
//   A. the user-defined policy (status quo),
//   B. the hybrid policy trained offline from a *previous* period's log,
//   C. an online Q-learner starting from scratch, exploring in production.
// Reported per month: mean downtime per incident. The online learner pays
// real downtime for its exploration (REIMAGE/RMA trials on machines a
// REBOOT would have fixed) — the cost the offline method only simulates.
#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "core/policy_generator.h"
#include "rl/online_policy.h"

namespace aer::bench {
namespace {

// Mean downtime per incident in each 30-day bucket of the horizon.
std::vector<double> MonthlyMeans(const SimulationResult& result,
                                 SimTime horizon) {
  const int months = static_cast<int>(horizon / (30 * kDay)) + 1;
  std::vector<double> total(static_cast<std::size_t>(months), 0.0);
  std::vector<std::int64_t> count(static_cast<std::size_t>(months), 0);
  for (const ProcessGroundTruth& gt : result.ground_truth) {
    const int month =
        std::min(months - 1, static_cast<int>(gt.start / (30 * kDay)));
    total[static_cast<std::size_t>(month)] +=
        static_cast<double>(gt.end - gt.start);
    ++count[static_cast<std::size_t>(month)];
  }
  std::vector<double> means;
  for (int m = 0; m < months; ++m) {
    if (count[static_cast<std::size_t>(m)] < 10) continue;
    means.push_back(total[static_cast<std::size_t>(m)] /
                    static_cast<double>(count[static_cast<std::size_t>(m)]));
  }
  return means;
}

void Run() {
  Header("ext_online_vs_offline", "Section 2.3.1 (why offline training)",
         "Monthly mean downtime per incident: user policy vs offline-trained "
         "hybrid vs online learner exploring in production.");

  // History period for the offline arm.
  TraceConfig config = GetDataset().config;
  const PolicyGenerator generator;
  const TrainedPolicy trained =
      generator.Generate(GetDataset().trace.result.log);

  TraceConfig next = config;
  next.sim.seed = config.sim.seed + 31337;
  const FaultCatalog catalog = MakeDefaultCatalog(next.catalog);

  ClusterSimulator sim_user(next.sim, catalog);
  UserDefinedPolicy user_arm(next.escalation);
  const SimulationResult under_user = sim_user.Run(user_arm);

  ClusterSimulator sim_hybrid(next.sim, catalog);
  UserDefinedPolicy fallback(next.escalation);
  HybridPolicy hybrid(trained, fallback);
  const SimulationResult under_hybrid = sim_hybrid.Run(hybrid);

  ClusterSimulator sim_online(next.sim, catalog);
  OnlineQLearningPolicy online;
  const SimulationResult under_online = sim_online.Run(online);

  const auto user_m = MonthlyMeans(under_user, next.sim.duration);
  const auto hybrid_m = MonthlyMeans(under_hybrid, next.sim.duration);
  const auto online_m = MonthlyMeans(under_online, next.sim.duration);
  const std::size_t months =
      std::min({user_m.size(), hybrid_m.size(), online_m.size()});

  std::vector<std::string> labels;
  ChartSeries user_s{"user", {}};
  ChartSeries hybrid_s{"offline hybrid", {}};
  ChartSeries online_s{"online learner", {}};
  for (std::size_t m = 0; m < months; ++m) {
    labels.push_back(StrFormat("month %zu", m + 1));
    user_s.values.push_back(user_m[m]);
    hybrid_s.values.push_back(hybrid_m[m]);
    online_s.values.push_back(online_m[m]);
  }
  Report("ext_online_vs_offline", "period (mean s/incident)", labels,
         {user_s, hybrid_s, online_s});

  const auto mean_of = [](const SimulationResult& r) {
    return static_cast<double>(r.total_downtime) /
           static_cast<double>(r.processes_completed);
  };
  std::printf("whole-period mean downtime per incident:\n");
  std::printf("  user            %.0f s\n", mean_of(under_user));
  std::printf("  offline hybrid  %.0f s (%.1f%% of user)\n",
              mean_of(under_hybrid),
              100.0 * mean_of(under_hybrid) / mean_of(under_user));
  std::printf("  online learner  %.0f s (%.1f%% of user), "
              "%zu error types discovered\n",
              mean_of(under_online),
              100.0 * mean_of(under_online) / mean_of(under_user),
              online.types_seen());
  std::printf("\nthe online learner's first months carry its exploration "
              "cost on live machines — the paper's case for learning "
              "offline from the log.\n");
  Footer();
}

}  // namespace
}  // namespace aer::bench

int main() {
  aer::bench::Run();
  return 0;
}
