// Sensitivity of the whole pipeline to the m-pattern dependence threshold
// minp (the paper fixes minp = 0.1 in Section 3.1). Low minp merges loose
// clusters and keeps almost everything; high minp fragments clusters and
// filters aggressively, shrinking the training set. The headline savings
// are robust across the whole usable range — the filter mostly guards the
// evaluation, not the learning.
#include <cstdio>

#include "bench_common.h"
#include "mining/error_type.h"

namespace aer::bench {
namespace {

void Run() {
  Header("ext_minp_sensitivity", "Section 3.1 parameter sensitivity",
         "Noise filtering and end-to-end savings across minp.");

  const BenchDataset& dataset = GetDataset();
  std::vector<std::string> labels;
  ChartSeries clean_frac{"clean fraction", {}};
  ChartSeries types_found{"error types", {}};
  ChartSeries hybrid_rel{"hybrid rel cost", {}};
  for (const double minp : {0.05, 0.1, 0.3, 0.5, 0.8}) {
    MPatternConfig mining;
    mining.minp = minp;
    const SymptomClustering clustering(dataset.all, mining);
    const NoiseFilterResult filtered =
        FilterNoisyProcesses(dataset.all, clustering);
    std::vector<RecoveryProcess> clean;
    for (std::size_t i : filtered.clean) {
      clean.push_back(dataset.all[i]);
    }
    const ErrorTypeCatalog types(clean, 1000);

    const ExperimentRunner runner(
        clean, dataset.trace.result.log.symptoms(),
        DefaultExperimentConfig());
    const ExperimentResult result = runner.RunOne(0.4, &GetPool());

    labels.push_back(StrFormat("minp %.2f", minp));
    clean_frac.values.push_back(filtered.clean_fraction);
    types_found.values.push_back(static_cast<double>(types.num_types()));
    hybrid_rel.values.push_back(result.hybrid.overall_relative_cost);
    std::printf("  minp %.2f: clean %.3f, %zu types, hybrid rel %.4f\n",
                minp, filtered.clean_fraction, types.num_types(),
                result.hybrid.overall_relative_cost);
  }
  Report("ext_minp_sensitivity", "minp", labels,
         {clean_frac, types_found, hybrid_rel});
  std::printf("\npaper's operating point minp = 0.1 sits on a wide "
              "plateau.\n");
  Footer();
}

}  // namespace
}  // namespace aer::bench

int main() {
  aer::bench::Run();
  return 0;
}
