// Figure 13: "Training time comparison" — per error type, the number of
// sweeps before the generated policy stabilizes, with and without the
// selection tree (training fraction 0.4, cap 160k sweeps, log scale).
// The paper's selection tree converges within 40k sweeps while standard RL
// sometimes fails to converge within 160k.
#include <cstdio>

#include "bench_common.h"

namespace aer::bench {
namespace {

void Run() {
  Header("fig13_training_time", "Figure 13 (Section 5.3)",
         "Sweeps to convergence per type, with vs without the selection "
         "tree (train fraction 0.4, cap 160k).");

  const BenchDataset& dataset = GetDataset();
  ExperimentConfig with_tree = DefaultExperimentConfig();
  with_tree.trainer.max_sweeps = 160000;
  with_tree.train_fractions = {0.4};

  ExperimentConfig without_tree = with_tree;
  without_tree.use_selection_tree = false;
  // The standard method needs long stability to stop flip-flopping between
  // near-tied actions.
  without_tree.trainer.check_every = 500;
  without_tree.trainer.stable_checks = 10;

  const ExperimentRunner runner_tree(
      dataset.clean, dataset.trace.result.log.symptoms(), with_tree);
  const ExperimentRunner runner_plain(
      dataset.clean, dataset.trace.result.log.symptoms(), without_tree);
  const ExperimentResult tree = runner_tree.RunOne(0.4, &GetPool());
  const ExperimentResult plain = runner_plain.RunOne(0.4, &GetPool());

  const std::size_t n = tree.training.size();
  ChartSeries with_s{"with tree", {}};
  ChartSeries without_s{"without tree", {}};
  int tree_max = 0;
  int plain_nonconverged = 0;
  for (std::size_t t = 0; t < n; ++t) {
    with_s.values.push_back(static_cast<double>(tree.training[t].sweeps));
    without_s.values.push_back(
        static_cast<double>(plain.training[t].sweeps));
    tree_max = std::max(tree_max, static_cast<int>(tree.training[t].sweeps));
    if (!plain.training[t].converged && plain.training[t].training_processes > 0) {
      ++plain_nonconverged;
    }
  }
  Report("fig13_training_time", "type", TypeLabels(n), {with_s, without_s},
         /*log_scale=*/true);

  std::printf("with selection tree: every type stabilizes by %d sweeps\n",
              tree_max);
  std::printf("without: %d of %zu types fail to converge within 160k "
              "sweeps\n",
              plain_nonconverged, n);
  std::printf("paper: with the tree, optimal policies within 40k sweeps; "
              "without, some types do not converge at 160k.\n");
  Footer();
}

}  // namespace
}  // namespace aer::bench

int main() {
  aer::bench::Run();
  return 0;
}
