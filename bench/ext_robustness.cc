// Robustness sweep: how the full pipeline holds up when the environment is
// dirtier than the calibrated default —
//   - true cross-fault noise (concurrent unrelated errors polluting
//     processes, on top of the generic-symptom noise),
//   - machine heterogeneity (per-machine repair-speed spread inflating the
//     variance of the per-type cost averages),
//   - telemetry damage (symptom events lost, timed-out actions leaving
//     retry trails — src/inject/event_perturber.h),
//   - byte-level log damage (corrupted lines re-read through the lenient
//     parser — src/inject/file_corruptor.h).
// For each arm: the noise filter's clean fraction, the platform-validation
// worst deviation (the Figure 7 criterion), and the hybrid savings.
#include <cstdio>
#include <sstream>

#include "bench_common.h"
#include "cluster/user_policy.h"
#include "common/rng.h"
#include "inject/event_perturber.h"
#include "inject/file_corruptor.h"
#include "mining/error_type.h"
#include "sim/platform.h"

namespace aer::bench {
namespace {

struct Arm {
  std::string name;
  double cross_fault_noise = 0.0;
  double speed_spread = 0.0;
  double drop_symptom = 0.0;      // event loss, applied to the training log
  double retry_action = 0.0;      // timeout-and-retry trails in the log
  double corrupt_fraction = 0.0;  // byte damage + lenient re-read
};

void Run() {
  Header("ext_robustness", "robustness sweep (not a paper figure)",
         "Pipeline health vs noise, heterogeneity, and injected log damage.");

  const std::vector<Arm> arms = {
      {"baseline"},
      {"cross-fault 3%", 0.03, 0.0},
      {"cross-fault 10%", 0.10, 0.0},
      {"speed spread 0.3", 0.0, 0.3},
      {"noise 3% + spread 0.3", 0.03, 0.3},
      {"event loss 10%", 0.0, 0.0, 0.10},
      {"event loss 30%", 0.0, 0.0, 0.30},
      {"action retries 15%", 0.0, 0.0, 0.0, 0.15},
      {"corrupt log 5%", 0.0, 0.0, 0.0, 0.0, 0.05},
      {"corrupt log 20%", 0.0, 0.0, 0.0, 0.0, 0.20},
      {"loss 10% + corrupt 5%", 0.0, 0.0, 0.10, 0.0, 0.05},
  };

  std::vector<std::string> labels;
  ChartSeries entries_kept{"entries kept", {}};
  ChartSeries clean_frac{"clean fraction", {}};
  ChartSeries fig7_dev{"fig7 worst dev", {}};
  ChartSeries hybrid_rel{"hybrid rel cost", {}};
  for (const Arm& arm : arms) {
    TraceConfig config = TraceConfigForScale("small");
    config.sim.num_machines = 800;
    config.sim.cross_fault_noise_probability = arm.cross_fault_noise;
    config.sim.machine_speed_spread = arm.speed_spread;
    const TraceDataset trace = GenerateTrace(config);
    const std::size_t original_entries = trace.result.log.size();

    // Injection stage: perturb the event stream, then damage the bytes and
    // recover what the lenient parser can.
    RecoveryLog log = trace.result.log;
    if (arm.drop_symptom > 0.0 || arm.retry_action > 0.0) {
      LogPerturbConfig perturb;
      perturb.drop_symptom = arm.drop_symptom;
      perturb.retry_action = arm.retry_action;
      log = PerturbLog(log, perturb);
    }
    LogParseResult parse;
    if (arm.corrupt_fraction > 0.0) {
      std::ostringstream os;
      log.Write(os);
      Rng rng(20070625);
      const std::string dirty =
          CorruptLines(os.str(), arm.corrupt_fraction, rng);
      std::istringstream is(dirty);
      RecoveryLog reread;
      parse = RecoveryLog::Read(is, reread, LogParseMode::kLenient);
      log = std::move(reread);
    }
    const double kept =
        original_entries == 0
            ? 1.0
            : static_cast<double>(log.size()) /
                  static_cast<double>(original_entries);

    const auto segmented = SegmentIntoProcesses(log);
    MPatternConfig mining;
    const SymptomClustering clustering(segmented.processes, mining);
    const auto filtered =
        FilterNoisyProcesses(segmented.processes, clustering);
    std::vector<RecoveryProcess> clean;
    for (std::size_t i : filtered.clean) {
      clean.push_back(segmented.processes[i]);
    }

    // Figure-7-style validation on this arm's data.
    const ErrorTypeCatalog types(clean, 40);
    const SimulationPlatform platform(clean, types, log.symptoms());
    UserDefinedPolicy user(config.escalation);
    double worst = 0.0;
    for (const auto& row : platform.ValidateAgainstLog(clean, user)) {
      if (row.process_count < 20) continue;
      worst = std::max(worst, std::abs(row.ratio - 1.0));
    }

    // End-to-end savings.
    ExperimentConfig experiment = DefaultExperimentConfig();
    experiment.user_policy = config.escalation;
    const ExperimentRunner runner(clean, log.symptoms(), experiment);
    const ExperimentResult result = runner.RunOne(0.4, &GetPool());

    labels.push_back(arm.name);
    entries_kept.values.push_back(kept);
    clean_frac.values.push_back(filtered.clean_fraction);
    fig7_dev.values.push_back(worst);
    hybrid_rel.values.push_back(result.hybrid.overall_relative_cost);
    std::printf("  %-24s kept %.3f (skipped %zu, repaired %zu), clean %.3f, "
                "fig7 worst dev %.3f, hybrid rel %.4f\n",
                arm.name.c_str(), kept, parse.skipped, parse.repaired,
                filtered.clean_fraction, worst,
                result.hybrid.overall_relative_cost);
  }
  Report("ext_robustness", "arm", labels,
         {entries_kept, clean_frac, fig7_dev, hybrid_rel});

  std::printf("\nthe mining front end absorbs cross-fault noise (it filters "
              "polluted processes before training); heterogeneity widens "
              "the platform's deviation; each injection arm alone shrinks "
              "the training set yet keeps the hybrid savings, but stacked "
              "damage (loss + corruption) can push the learned policy past "
              "the user baseline — the regime the circuit breaker exists "
              "for.\n");
  Footer();
}

}  // namespace
}  // namespace aer::bench

int main() {
  aer::bench::Run();
  return 0;
}
