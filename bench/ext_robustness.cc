// Robustness sweep: how the full pipeline holds up when the environment is
// dirtier than the calibrated default —
//   - true cross-fault noise (concurrent unrelated errors polluting
//     processes, on top of the generic-symptom noise),
//   - machine heterogeneity (per-machine repair-speed spread inflating the
//     variance of the per-type cost averages).
// For each arm: the noise filter's clean fraction, the platform-validation
// worst deviation (the Figure 7 criterion), and the hybrid savings.
#include <cstdio>

#include "bench_common.h"
#include "cluster/user_policy.h"
#include "mining/error_type.h"
#include "sim/platform.h"

namespace aer::bench {
namespace {

struct Arm {
  std::string name;
  double cross_fault_noise;
  double speed_spread;
};

void Run() {
  Header("ext_robustness", "robustness sweep (not a paper figure)",
         "Pipeline health vs cross-fault noise and machine heterogeneity.");

  const std::vector<Arm> arms = {
      {"baseline", 0.0, 0.0},
      {"cross-fault 3%", 0.03, 0.0},
      {"cross-fault 10%", 0.10, 0.0},
      {"speed spread 0.3", 0.0, 0.3},
      {"noise 3% + spread 0.3", 0.03, 0.3},
  };

  std::vector<std::string> labels;
  ChartSeries clean_frac{"clean fraction", {}};
  ChartSeries fig7_dev{"fig7 worst dev", {}};
  ChartSeries hybrid_rel{"hybrid rel cost", {}};
  for (const Arm& arm : arms) {
    TraceConfig config = TraceConfigForScale("small");
    config.sim.num_machines = 800;
    config.sim.cross_fault_noise_probability = arm.cross_fault_noise;
    config.sim.machine_speed_spread = arm.speed_spread;
    const TraceDataset trace = GenerateTrace(config);

    const auto segmented = SegmentIntoProcesses(trace.result.log);
    MPatternConfig mining;
    const SymptomClustering clustering(segmented.processes, mining);
    const auto filtered =
        FilterNoisyProcesses(segmented.processes, clustering);
    std::vector<RecoveryProcess> clean;
    for (std::size_t i : filtered.clean) {
      clean.push_back(segmented.processes[i]);
    }

    // Figure-7-style validation on this arm's data.
    const ErrorTypeCatalog types(clean, 40);
    const SimulationPlatform platform(clean, types,
                                      trace.result.log.symptoms());
    UserDefinedPolicy user(config.escalation);
    double worst = 0.0;
    for (const auto& row : platform.ValidateAgainstLog(clean, user)) {
      if (row.process_count < 20) continue;
      worst = std::max(worst, std::abs(row.ratio - 1.0));
    }

    // End-to-end savings.
    ExperimentConfig experiment = DefaultExperimentConfig();
    experiment.user_policy = config.escalation;
    const ExperimentRunner runner(clean, trace.result.log.symptoms(),
                                  experiment);
    const ExperimentResult result = runner.RunOne(0.4);

    labels.push_back(arm.name);
    clean_frac.values.push_back(filtered.clean_fraction);
    fig7_dev.values.push_back(worst);
    hybrid_rel.values.push_back(result.hybrid.overall_relative_cost);
    std::printf("  %-24s clean %.3f, fig7 worst dev %.3f, hybrid rel "
                "%.4f\n",
                arm.name.c_str(), filtered.clean_fraction, worst,
                result.hybrid.overall_relative_cost);
  }
  Report("ext_robustness", "arm", labels,
         {clean_frac, fig7_dev, hybrid_rel});

  std::printf("\nthe mining front end absorbs cross-fault noise (it filters "
              "polluted processes before training); heterogeneity widens "
              "the platform's deviation but the savings persist.\n");
  Footer();
}

}  // namespace
}  // namespace aer::bench

int main() {
  aer::bench::Run();
  return 0;
}
