// Figure 10: "Coverage of the trained policy" — per error type, the
// fraction of held-out processes the trained policy can finish on its own
// (its learned action sequence cures them). The paper reports coverage
// above 90% even for the affected types, improving with training data.
#include <cstdio>

#include "bench_common.h"

namespace aer::bench {
namespace {

void Run() {
  Header("fig10_coverage", "Figure 10",
         "Trained-policy coverage per error type, training fractions "
         "0.2/0.4/0.6/0.8.");

  const auto& results = GetExperimentResults();
  const std::size_t n = results.front().trained.rows.size();

  std::vector<ChartSeries> series;
  for (const ExperimentResult& r : results) {
    ChartSeries s{StrFormat("%.1f", r.train_fraction), {}};
    for (const TypeEvalRow& row : r.trained.rows) {
      s.values.push_back(row.coverage);
    }
    series.push_back(std::move(s));
  }
  Report("fig10_coverage", "type", TypeLabels(n), series);

  for (const ExperimentResult& r : results) {
    std::int64_t uncovered_types = 0;
    for (const TypeEvalRow& row : r.trained.rows) {
      if (row.processes > 0 && row.coverage < 1.0) ++uncovered_types;
    }
    std::printf("train %.0f%%: overall coverage %.2f%%, %lld of %zu types "
                "below full coverage\n",
                100.0 * r.train_fraction,
                100.0 * r.trained.overall_coverage,
                static_cast<long long>(uncovered_types),
                r.trained.rows.size());
  }
  std::printf("paper: coverage > 90%% everywhere; unhandled cases shrink as "
              "training data grows.\n");
  Footer();
}

}  // namespace
}  // namespace aer::bench

int main() {
  aer::bench::Run();
  return 0;
}
