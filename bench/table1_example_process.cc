// Table 1: "Example of recovery process" — prints a representative recovery
// process from the synthetic log in the paper's <time, description> format
// (a multi-action incident: symptoms, a failed cheap action, more symptoms,
// a successful stronger action).
#include <algorithm>
#include <cstdio>

#include "bench_common.h"

namespace aer::bench {
namespace {

void Run() {
  Header("table1_example_process", "Table 1",
         "One recovery process as it appears in the recovery log.");

  const BenchDataset& dataset = GetDataset();
  const SymptomTable& symptoms = dataset.trace.result.log.symptoms();

  // Pick the first process with >= 2 actions and a mid-process symptom —
  // the structure of the paper's example.
  const RecoveryProcess* example = nullptr;
  for (const RecoveryProcess& p : dataset.clean) {
    if (p.attempts().size() < 2) continue;
    bool symptom_after_action = false;
    for (const SymptomEvent& s : p.symptoms()) {
      if (s.time > p.attempts().front().start) symptom_after_action = true;
    }
    if (symptom_after_action) {
      example = &p;
      break;
    }
  }
  if (example == nullptr) {
    std::printf("no multi-action process found (dataset too small?)\n");
    return;
  }

  // Merge symptoms/actions/success into one timeline.
  struct Row {
    SimTime time;
    std::string description;
  };
  std::vector<Row> rows;
  for (const SymptomEvent& s : example->symptoms()) {
    rows.push_back({s.time, "error:" + symptoms.Name(s.symptom)});
  }
  for (const ActionAttempt& a : example->attempts()) {
    rows.push_back({a.start, std::string(ActionName(a.action))});
  }
  rows.push_back({example->success_time(), "Success"});
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.time < b.time; });

  std::printf("\nmachine m%d (name omitted in the paper's table)\n\n",
              example->machine());
  std::printf("  %-12s  %s\n", "Time", "Description");
  std::printf("  %-12s  %s\n", "------------", "------------------------");
  for (const Row& row : rows) {
    std::printf("  %-12s  %s\n", FormatSimTime(row.time).c_str(),
                row.description.c_str());
  }
  std::printf("\ndowntime: %s (%lld s), %zu repair actions\n",
              FormatSimTime(example->downtime()).c_str(),
              static_cast<long long>(example->downtime()),
              example->attempts().size());
  Footer();
}

}  // namespace
}  // namespace aer::bench

int main() {
  aer::bench::Run();
  return 0;
}
