// Extension (paper Section 7): "introducing more complicated relationships
// among actions" — and, as a special case, the ablation of hypothesis 2.
// The offline platform's cure rule depends on which executed actions may
// substitute which required ones:
//
//   total order   the paper's hypothesis 2 (stronger replaces weaker)
//   identity-only hypothesis 2 off: only the same action (or manual
//                 repair) satisfies a requirement
//
// Under identity-only the learner cannot credit a REBOOT-first policy with
// curing TRYNOP-cured incidents, so most of the savings disappear — which
// is exactly how load-bearing hypothesis 2 is.
#include <cstdio>

#include "bench_common.h"
#include "eval/evaluator.h"

namespace aer::bench {
namespace {

struct Arm {
  std::string name;
  const CapabilityModel* model;
};

void Run() {
  Header("ext_action_relations",
         "Section 7 extension (action relationships) / hypothesis-2 ablation",
         "Trained-policy results at train fraction 0.4 under different "
         "action-substitution relations.");

  const BenchDataset& dataset = GetDataset();
  const ErrorTypeCatalog types(dataset.clean, 40);
  const TrainTestSplit split = SplitByTime(dataset.clean, 0.4);

  const std::vector<Arm> arms = {
      {"total order (paper)", &CapabilityModel::TotalOrder()},
      {"identity only (no H2)", &CapabilityModel::IdentityOnly()},
  };

  std::vector<std::string> labels;
  ChartSeries rel{"relative cost", {}};
  ChartSeries cov{"coverage", {}};
  for (const Arm& arm : arms) {
    const SimulationPlatform train_platform(
        split.train, types, dataset.trace.result.log.symptoms(), 20,
        *arm.model);
    TrainerConfig trainer_config;
    trainer_config.max_sweeps = 40000;
    const QLearningTrainer trainer(train_platform, split.train,
                                   trainer_config);
    const auto output =
        SelectionTreeTrainer(trainer, SelectionTreeConfig{}).TrainAll();

    // Evaluate each arm's policy under its own relation (the relation is a
    // modelling assumption: the evaluation must be self-consistent).
    const SimulationPlatform test_platform(
        split.test, types, dataset.trace.result.log.symptoms(), 20,
        *arm.model);
    const PolicyEvaluator evaluator(test_platform);
    const EvalSummary eval =
        evaluator.EvaluateTrained(output.policy, split.test);

    labels.push_back(arm.name);
    rel.values.push_back(eval.overall_relative_cost);
    cov.values.push_back(eval.overall_coverage);
    std::printf("  %-24s relative cost %.4f, coverage %.4f\n",
                arm.name.c_str(), eval.overall_relative_cost,
                eval.overall_coverage);
  }
  Report("ext_action_relations", "relation", labels, {rel, cov});

  std::printf("\nwithout hypothesis 2 the learner can only re-order what the "
              "log already did, so the stronger-action-first savings "
              "largely vanish — the hypothesis carries the headline "
              "result.\n");
  Footer();
}

}  // namespace
}  // namespace aer::bench

int main() {
  aer::bench::Run();
  return 0;
}
