# Plots the paper's figures from the CSV series the benches emit.
#
#   mkdir -p csv && AER_CSV_DIR=$PWD/csv sh -c 'for b in build/bench/fig*; do $b; done'
#   gnuplot -e "csvdir='csv'; outdir='plots'" bench/plot_figures.gp
#
# Produces one PNG per figure in <outdir>.
if (!exists("csvdir")) csvdir = "csv"
if (!exists("outdir")) outdir = "plots"
system sprintf("mkdir -p %s", outdir)
set datafile separator ","
set terminal pngcairo size 900,520 font "Sans,10"
set key outside top right
set grid ytics lc rgb "#dddddd"

set output sprintf("%s/fig03_symptom_sets.png", outdir)
set title "Fig 3 — cohesive symptom sets vs minp"
set xlabel "minp"; set ylabel "fraction of processes"
plot sprintf("%s/fig03_symptom_sets.csv", csvdir) using 1:2 skip 1 \
     with linespoints title "cohesive"

set output sprintf("%s/fig05_error_type_counts.png", outdir)
set title "Fig 5 — count of 40 most frequent error types"
set xlabel "error type (rank)"; set ylabel "processes"
plot sprintf("%s/fig05_error_type_counts.csv", csvdir) using 0:2 skip 1 \
     with boxes fs solid 0.6 title "count"

set output sprintf("%s/fig06_downtime_by_type.png", outdir)
set title "Fig 6 — total downtime per error type (log scale)"
set xlabel "error type (rank)"; set ylabel "downtime (s)"
set logscale y
plot sprintf("%s/fig06_downtime_by_type.csv", csvdir) using 0:2 skip 1 \
     with boxes fs solid 0.6 title "downtime"
unset logscale y

set output sprintf("%s/fig07_platform_validation.png", outdir)
set title "Fig 7 — platform validation: estimated / actual"
set xlabel "error type (rank)"; set ylabel "ratio"
set yrange [0.9:1.1]
plot sprintf("%s/fig07_platform_validation.csv", csvdir) using 0:2 skip 1 \
     with linespoints title "est/actual", 1 with lines lc rgb "#999999" notitle
unset yrange

set output sprintf("%s/fig08_trained_relative_cost.png", outdir)
set title "Fig 8 — trained-policy relative cost per type"
set xlabel "error type (rank)"; set ylabel "relative cost"
plot for [c=2:5] sprintf("%s/fig08_trained_relative_cost.csv", csvdir) \
     using 0:c skip 1 with linespoints title columnheader(c)

set output sprintf("%s/fig10_coverage.png", outdir)
set title "Fig 10 — trained-policy coverage per type"
set xlabel "error type (rank)"; set ylabel "coverage"
set yrange [0.8:1.02]
plot for [c=2:5] sprintf("%s/fig10_coverage.csv", csvdir) \
     using 0:c skip 1 with linespoints title columnheader(c)
unset yrange

set output sprintf("%s/fig13_training_time.png", outdir)
set title "Fig 13 — sweeps to convergence (log scale)"
set xlabel "error type (rank)"; set ylabel "sweeps"
set logscale y
plot for [c=2:3] sprintf("%s/fig13_training_time.csv", csvdir) \
     using 0:c skip 1 with linespoints title columnheader(c)
unset logscale y

set output sprintf("%s/fig14_selection_tree_perf.png", outdir)
set title "Fig 14 — policy quality, tree vs standard"
set xlabel "error type (rank)"; set ylabel "relative cost"
plot for [c=2:3] sprintf("%s/fig14_selection_tree_perf.csv", csvdir) \
     using 0:c skip 1 with linespoints title columnheader(c)
