// Machine-readable perf records for the bench suite (docs/PARALLELISM.md).
//
// Every bench binary emits one BENCH_<name>.json next to its stdout report:
// wall time, the bench's reported series folded into an FNV-1a output
// checksum (so numeric drift is detectable without parsing the prose), and
// any bench-specific metrics (episodes/sec, speedup vs serial, ...). The
// figure benches get all of this for free through bench_common's
// Header()/Report()/Footer(); training and micro benches add their own
// metrics explicitly. bench/run_all.py runs the whole suite, aggregates the
// records into BENCH_ALL.json and compares against a recorded baseline —
// the repo's perf trajectory, in a diffable format.
//
// File format (keys always present, metrics bench-specific):
//   {
//     "name": "fig13_training_time",
//     "scale": "small",                // AER_SCALE at run time
//     "threads": 8,                    // ThreadPool::DefaultThreadCount()
//     "wall_ms": 1234.5,               // Header() -> Finish() wall clock
//     "checksum": "0123456789abcdef",  // FNV-1a 64 over reported series
//     "metrics": { "episodes_per_sec": 52340.1, ... }
//   }
//
// Output directory: AER_BENCH_JSON_DIR if set, else the working directory.
// Setting AER_BENCH_JSON_DIR=off suppresses emission entirely.
#ifndef AER_BENCH_BENCH_JSON_H_
#define AER_BENCH_BENCH_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace aer::bench {

// The per-process record under construction. Begin() is idempotent per
// process (the first name wins); Finish() writes the file and is a no-op
// on a record that never began.
class BenchRecord {
 public:
  static BenchRecord& Instance();

  // Starts the wall clock and names the output file BENCH_<name>.json.
  void Begin(std::string_view name);

  // Folds bytes into the running FNV-1a 64 output checksum. Report() feeds
  // every series value through here; benches may add their own payloads
  // (e.g. serialized Q-tables) to tighten the drift detection.
  void FoldChecksum(std::string_view bytes);

  // Bench-specific numeric metric ("episodes_per_sec", "speedup", ...).
  // Re-setting a key overwrites it.
  void SetMetric(std::string_view key, double value);
  void SetIntMetric(std::string_view key, std::int64_t value);

  // Folds the registry's deterministic text snapshot (volatile metrics
  // excluded) into the checksum and mirrors every counter into an int
  // metric under its own name, so run_all.py --compare diffs observability
  // counters exactly, alongside the throughput metrics.
  void RecordRegistrySnapshot(const obs::MetricsRegistry& registry);

  // Stops the clock and writes BENCH_<name>.json. Safe to call once.
  void Finish();

  // The checksum accumulated so far, as 16 hex digits (for tests).
  std::string ChecksumHex() const;

 private:
  BenchRecord();
  struct Impl;
  Impl* impl_;  // intentionally leaked: lives until process exit
};

}  // namespace aer::bench

#endif  // AER_BENCH_BENCH_JSON_H_
