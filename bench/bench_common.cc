#include "bench_common.h"

#include <cstdio>
#include <memory>

#include "bench_json.h"
#include "common/string_util.h"
#include "mining/error_type.h"

namespace aer::bench {
namespace {

std::unique_ptr<BenchDataset> BuildDataset() {
  auto dataset = std::make_unique<BenchDataset>();
  dataset->config = TraceConfigFromEnv();
  dataset->trace = GenerateTrace(dataset->config);
  dataset->all =
      SegmentIntoProcesses(dataset->trace.result.log).processes;

  MPatternConfig mining;  // minp = 0.1, the paper's setting
  const SymptomClustering clustering(dataset->all, mining);
  dataset->clusters = clustering.clusters().size();
  const NoiseFilterResult filtered =
      FilterNoisyProcesses(dataset->all, clustering);
  dataset->cohesive_fraction = filtered.clean_fraction;
  dataset->clean.reserve(filtered.clean.size());
  for (std::size_t i : filtered.clean) {
    dataset->clean.push_back(dataset->all[i]);
  }
  return dataset;
}

}  // namespace

const BenchDataset& GetDataset() {
  static const std::unique_ptr<BenchDataset> dataset = BuildDataset();
  return *dataset;
}

ExperimentConfig DefaultExperimentConfig() {
  ExperimentConfig config;
  config.trainer.max_sweeps = 40000;
  config.use_selection_tree = true;
  return config;
}

const ExperimentRunner& GetExperimentRunner() {
  static const std::unique_ptr<ExperimentRunner> runner = [] {
    const BenchDataset& dataset = GetDataset();
    return std::make_unique<ExperimentRunner>(
        dataset.clean, dataset.trace.result.log.symptoms(),
        DefaultExperimentConfig());
  }();
  return *runner;
}

ThreadPool& GetPool() {
  static ThreadPool* pool = new ThreadPool();  // leaked: lives to exit
  return *pool;
}

const std::vector<ExperimentResult>& GetExperimentResults() {
  static const std::vector<ExperimentResult> results =
      GetExperimentRunner().RunAll(&GetPool());
  return results;
}

void Header(const std::string& id, const std::string& paper_item,
            const std::string& description) {
  BenchRecord::Instance().Begin(id);
  const BenchDataset& dataset = GetDataset();
  std::printf("================================================================\n");
  std::printf("%s — reproduces %s\n", id.c_str(), paper_item.c_str());
  std::printf("  (Zhu & Yuan, \"A Reinforcement Learning Approach to "
              "Automatic Error Recovery\", DSN 2007)\n");
  std::printf("%s\n", description.c_str());
  std::printf("dataset: %d machines, %lld days, %zu processes "
              "(%zu after noise filtering)\n",
              dataset.config.sim.num_machines,
              static_cast<long long>(dataset.config.sim.duration / kDay),
              dataset.all.size(), dataset.clean.size());
  std::printf("================================================================\n");
}

void Footer() {
  BenchRecord::Instance().Finish();
  std::printf("\n");
}

void Report(const std::string& csv_name, const std::string& x_name,
            const std::vector<std::string>& labels,
            const std::vector<ChartSeries>& series, bool log_scale) {
  // Fold the series into the bench's output checksum at full precision, so
  // BENCH_<name>.json detects numeric drift the rounded table would hide.
  BenchRecord& record = BenchRecord::Instance();
  record.FoldChecksum(csv_name);
  for (const std::string& label : labels) record.FoldChecksum(label);
  for (const ChartSeries& s : series) {
    record.FoldChecksum(s.name);
    for (const double v : s.values) {
      record.FoldChecksum(StrFormat("%.17g,", v));
    }
  }

  std::printf("\n%s\n", RenderTable(x_name, labels, series).c_str());
  std::printf("%s\n",
              (log_scale ? RenderLogBarChart(labels, series)
                         : RenderBarChart(labels, series))
                  .c_str());

  CsvWriter csv(CsvDirFromEnv(), csv_name);
  if (csv.enabled()) {
    std::vector<std::string> header = {x_name};
    for (const ChartSeries& s : series) header.push_back(s.name);
    csv.WriteRow(header);
    for (std::size_t i = 0; i < labels.size(); ++i) {
      std::vector<std::string> row = {labels[i]};
      for (const ChartSeries& s : series) {
        row.push_back(StrFormat("%.6g", s.values[i]));
      }
      csv.WriteRow(row);
    }
  }
}

std::vector<std::string> TypeLabels(std::size_t n) {
  std::vector<std::string> labels;
  labels.reserve(n);
  for (std::size_t i = 1; i <= n; ++i) {
    labels.push_back(StrFormat("%2zu", i));
  }
  return labels;
}

}  // namespace aer::bench
