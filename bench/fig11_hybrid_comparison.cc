// Figure 11: "Performance comparison between trained policy and hybrid
// policy" — per error type, the relative cost of the pure RL-trained policy
// (handled processes only) against the hybrid policy (all processes, with
// the user-defined fallback), for training fractions 0.2 (a) and 0.4 (b).
// The paper finds the two nearly identical except for sparsely-trained
// types at 20% training (its error type 23).
#include <cstdio>

#include "bench_common.h"

namespace aer::bench {
namespace {

void ReportOne(const ExperimentResult& result, const char* csv_suffix) {
  const std::size_t n = result.trained.rows.size();
  ChartSeries trained{"trained", {}};
  ChartSeries hybrid{"hybrid", {}};
  for (std::size_t t = 0; t < n; ++t) {
    trained.values.push_back(result.trained.rows[t].relative_cost);
    hybrid.values.push_back(result.hybrid.rows[t].relative_cost);
  }
  std::printf("\n--- training fraction %.1f ---\n", result.train_fraction);
  Report(std::string("fig11_hybrid_comparison_") + csv_suffix, "type",
         TypeLabels(n), {trained, hybrid});

  // Types where the hybrid diverges: sparsely-trained sequences whose test
  // split contains unseen patterns (the paper's type-23 discussion).
  std::printf("types where |hybrid - trained| > 0.1:\n");
  bool any = false;
  for (std::size_t t = 0; t < n; ++t) {
    const double delta = std::abs(result.hybrid.rows[t].relative_cost -
                                  result.trained.rows[t].relative_cost);
    if (result.trained.rows[t].handled >= 5 && delta > 0.1) {
      std::printf("  type %2zu: trained %.3f vs hybrid %.3f\n", t + 1,
                  result.trained.rows[t].relative_cost,
                  result.hybrid.rows[t].relative_cost);
      any = true;
    }
  }
  if (!any) std::printf("  (none)\n");
}

void Run() {
  Header("fig11_hybrid_comparison", "Figure 11 (a) and (b)",
         "Trained vs hybrid relative cost per type at 20% and 40% "
         "training.");
  const auto& results = GetExperimentResults();
  ReportOne(results[0], "a_train02");
  ReportOne(results[1], "b_train04");
  std::printf("\npaper: nearly identical curves; exceptions only at 20%% "
              "training where the training set misses patterns.\n");
  Footer();
}

}  // namespace
}  // namespace aer::bench

int main() {
  aer::bench::Run();
  return 0;
}
