// Figure 6: "Total downtime of 40 most frequent error types under
// user-defined policy" — a log-scale view: some mid-frequency types (the
// hardware / reimage-bound ones) dominate total downtime even though the
// most frequent types dominate counts.
#include <cstdio>

#include "bench_common.h"
#include "log/log_stats.h"

namespace aer::bench {
namespace {

void Run() {
  Header("fig06_downtime_by_type", "Figure 6",
         "Total downtime (s, log scale) per error type under the "
         "user-defined policy.");

  const BenchDataset& dataset = GetDataset();
  const std::vector<ErrorTypeStat> ranked = RankErrorTypes(dataset.clean);
  const std::size_t n = std::min<std::size_t>(40, ranked.size());

  ChartSeries downtime{"downtime_s", {}};
  for (std::size_t i = 0; i < n; ++i) {
    downtime.values.push_back(static_cast<double>(ranked[i].total_downtime));
  }
  Report("fig06_downtime_by_type", "type", TypeLabels(n), {downtime},
         /*log_scale=*/true);

  std::printf("total downtime across all types: %.3f million seconds\n",
              static_cast<double>(TotalDowntime(dataset.clean)) / 1e6);
  Footer();
}

}  // namespace
}  // namespace aer::bench

int main() {
  aer::bench::Run();
  return 0;
}
