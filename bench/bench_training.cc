// Serial vs parallel training throughput (docs/PARALLELISM.md).
//
// Trains the full per-type policy twice from the same master seed — once on
// the serial QLearningTrainer, once sharded by error type over the shared
// ThreadPool — and reports episodes/sec for both plus the speedup. The two
// runs must produce byte-identical serialized policies (the determinism
// contract); the bench aborts if they ever diverge, and folds the serialized
// policy and every per-type Q-table into the BENCH_training.json checksum so
// run_all.py catches numeric drift across commits.
//
// This TU also carries the compiled-out profiler proof: it defines
// AER_PROFILING_DISABLED before including profiler.h — the state every TU
// has in a -DAER_PROFILING=OFF build — so AER_PROFILE_SCOPE must vanish
// here (static_assert below) and record nothing at run time (checked in
// Run()). The *library* keeps whatever instrumentation the build selected.
#ifndef AER_PROFILING_DISABLED
#define AER_PROFILING_DISABLED
#endif
#include "common/profiler.h"

#include <chrono>
#include <cstdio>
#include <sstream>

#include "bench_common.h"
#include "bench_json.h"
#include "common/check.h"
#include "mining/error_type.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "rl/parallel_trainer.h"
#include "rl/qlearning.h"
#include "rl/telemetry.h"
#include "sim/platform.h"

namespace aer::bench {
namespace {

static_assert(AER_PROFILING_IS_ON() == 0,
              "this TU disables profiling; the macro must see that");

// Compiles only if AER_PROFILE_SCOPE expands to nothing at all — any object
// construction would be ill-formed in a constexpr function.
constexpr int ProfilerCompiledOut() {
  AER_PROFILE_SCOPE("bench_probe");
  return 1;
}
static_assert(ProfilerCompiledOut() == 1,
              "AER_PROFILE_SCOPE must compile out under "
              "AER_PROFILING_DISABLED");

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

void Run() {
  Header("training",
         "Section 4 training loop (engineering extension)",
         "Serial vs per-error-type parallel training: same seed, same bytes "
         "out, episodes/sec and speedup recorded to BENCH_training.json.");

  const BenchDataset& dataset = GetDataset();
  const ErrorTypeCatalog types(dataset.clean, 40);
  const SimulationPlatform platform(
      dataset.clean, types, dataset.trace.result.log.symptoms(), 20);
  const TrainerConfig config = DefaultExperimentConfig().trainer;
  const QLearningTrainer trainer(platform, dataset.clean, config);

  // Serial arm: the unmodified reference trainer.
  const auto serial_start = std::chrono::steady_clock::now();
  const QLearningTrainer::TrainingOutput serial = trainer.TrainAll();
  const double serial_ms = MsSince(serial_start);

  // Parallel arm: sharded by type over the shared pool.
  ThreadPool& pool = GetPool();
  const ParallelTrainer parallel_trainer(trainer, pool);
  std::vector<QTable> tables;
  const auto parallel_start = std::chrono::steady_clock::now();
  const QLearningTrainer::TrainingOutput parallel =
      parallel_trainer.TrainAll(&tables);
  const double parallel_ms = MsSince(parallel_start);

  // Equivalence gate: the serialized policies must match byte for byte.
  std::ostringstream serial_bytes;
  serial.policy.Write(serial_bytes);
  std::ostringstream parallel_bytes;
  parallel.policy.Write(parallel_bytes);
  AER_CHECK(serial_bytes.str() == parallel_bytes.str())
      << "parallel training diverged from the serial trainer";

  const std::int64_t episodes = ParallelTrainer::TotalEpisodes(serial);
  AER_CHECK_EQ(episodes, ParallelTrainer::TotalEpisodes(parallel));
  const double serial_eps = episodes / (serial_ms / 1000.0);
  const double parallel_eps = episodes / (parallel_ms / 1000.0);

  // Runtime half of the compiled-out profiler proof (the compile-time half
  // is the static_assert above): a million disabled scopes leave the global
  // registry's call count untouched, because the loop body is literally
  // empty.
  const std::int64_t profile_calls_before =
      ProfileRegistry::Global().TotalCalls();
  for (int i = 0; i < 1000000; ++i) {
    AER_PROFILE_SCOPE("bench_disabled_probe");
  }
  AER_CHECK_EQ(ProfileRegistry::Global().TotalCalls(), profile_calls_before)
      << "a compiled-out AER_PROFILE_SCOPE recorded profiler calls";

  // Telemetry arm: the serial trainer again, with per-episode telemetry
  // collection on and the full observability stack attached — each type's
  // shard is published into a live registry as it finishes, with a
  // TimeSeriesRecorder advancing on cumulative episodes. Two gates:
  // telemetry+recorder is observation-only (byte-identical policy) and
  // near-free (< 5% wall overhead, with a small absolute slack so
  // sub-second small-scale runs aren't failed by scheduler noise).
  TrainerConfig telemetry_config = config;
  telemetry_config.collect_telemetry = true;
  const QLearningTrainer telemetry_trainer(platform, dataset.clean,
                                           telemetry_config);
  obs::MetricsRegistry registry;
  obs::TimeSeriesRecorder recorder(
      registry, {.window_width = episodes >= 8 ? episodes / 8 : 1});
  QLearningTrainer::TrainingOutput telemetry;
  std::int64_t telemetry_episodes = 0;
  const auto telemetry_start = std::chrono::steady_clock::now();
  for (std::size_t t = 0; t < types.num_types(); ++t) {
    const ErrorTypeId type = static_cast<ErrorTypeId>(t);
    TypeTrainingResult result = telemetry_trainer.TrainType(type);
    if (!result.sequence.empty()) {
      telemetry.policy.AddType(
          {std::string(platform.symptoms().Name(
               platform.types().symptom_of(type))),
           result.sequence});
    }
    PublishTypeTelemetry(registry, result);
    telemetry_episodes += result.episodes;
    recorder.AdvanceTo(telemetry_episodes);
    telemetry.per_type.push_back(std::move(result));
  }
  recorder.Finish(telemetry_episodes);
  PublishTrainingSummary(registry, telemetry.per_type);
  const double telemetry_ms = MsSince(telemetry_start);
  std::ostringstream telemetry_bytes;
  telemetry.policy.Write(telemetry_bytes);
  AER_CHECK(telemetry_bytes.str() == serial_bytes.str())
      << "telemetry collection changed the trained policy";
  AER_CHECK_LE(telemetry_ms, serial_ms * 1.05 + 250.0)
      << "telemetry overhead above 5%: " << telemetry_ms << " ms vs "
      << serial_ms << " ms baseline";
  AER_CHECK_EQ(telemetry_episodes, episodes)
      << "per-type training diverged from TrainAll's episode count";
  AER_CHECK_GE(recorder.windows_closed(), 1)
      << "the recorder closed no windows over a full training run";
  const double telemetry_eps = episodes / (telemetry_ms / 1000.0);

  PublishTrainingThroughput(registry, telemetry_eps);

  BenchRecord& record = BenchRecord::Instance();
  record.RecordRegistrySnapshot(registry);
  // The windowed deltas are deterministic too (docs/OBSERVABILITY.md), so
  // folding the recorder's export catches drift in *when* counters moved,
  // not just their totals.
  record.FoldChecksum(recorder.ExportText());
  record.SetIntMetric("ts_windows_closed", recorder.windows_closed());
  record.FoldChecksum(parallel_bytes.str());
  for (const QTable& table : tables) {
    std::ostringstream table_bytes;
    table.Write(table_bytes);
    record.FoldChecksum(table_bytes.str());
  }
  record.SetIntMetric("episodes", episodes);
  record.SetIntMetric("types", static_cast<std::int64_t>(types.num_types()));
  record.SetMetric("serial_wall_ms", serial_ms);
  record.SetMetric("parallel_wall_ms", parallel_ms);
  record.SetMetric("episodes_per_sec_serial", serial_eps);
  record.SetMetric("episodes_per_sec", parallel_eps);
  record.SetMetric("speedup_vs_serial", serial_eps > 0.0
                                            ? parallel_eps / serial_eps
                                            : 0.0);

  record.SetMetric("episodes_per_sec_telemetry", telemetry_eps);
  record.SetMetric("telemetry_wall_ms", telemetry_ms);

  std::printf("\n%-10s %14s %16s\n", "arm", "wall ms", "episodes/sec");
  std::printf("%-10s %14.1f %16.1f\n", "serial", serial_ms, serial_eps);
  std::printf("%-10s %14.1f %16.1f\n", "parallel", parallel_ms, parallel_eps);
  std::printf("%-10s %14.1f %16.1f\n", "telemetry", telemetry_ms,
              telemetry_eps);
  std::printf("\nepisodes: %lld across %zu types, %d worker thread(s), "
              "speedup %.2fx\n",
              static_cast<long long>(episodes), types.num_types(),
              ThreadPool::DefaultThreadCount(),
              serial_eps > 0.0 ? parallel_eps / serial_eps : 0.0);
  std::printf("serialized policies: identical (%zu bytes)\n",
              parallel_bytes.str().size());
  std::printf("time series: %lld windows closed, %lld dropped\n",
              static_cast<long long>(recorder.windows_closed()),
              static_cast<long long>(recorder.windows_dropped()));

  Footer();
}

}  // namespace
}  // namespace aer::bench

int main() {
  aer::bench::Run();
  return 0;
}
