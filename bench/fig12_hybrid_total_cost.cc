// Figure 12: "Total time cost of hybrid approach under different tests" —
// total downtime of the user-defined policy vs the hybrid policy on each
// test's full held-out log (the hybrid handles everything). The paper's
// hybrid keeps the >10% savings; 89.18% of the original at 40% training.
#include <cstdio>

#include "bench_common.h"
#include "eval/bootstrap.h"

namespace aer::bench {
namespace {

void Run() {
  Header("fig12_hybrid_total_cost", "Figure 12",
         "Total downtime, user-defined vs hybrid, tests 1-4 (all "
         "processes).");

  const auto& results = GetExperimentResults();
  std::vector<std::string> labels;
  ChartSeries user{"user-defined", {}};
  ChartSeries hybrid{"hybrid", {}};
  for (std::size_t i = 0; i < results.size(); ++i) {
    labels.push_back(StrFormat("test %zu", i + 1));
    user.values.push_back(results[i].hybrid.total_actual_cost / 1e6);
    hybrid.values.push_back(results[i].hybrid.total_policy_cost / 1e6);
  }
  Report("fig12_hybrid_total_cost", "test (Msec)", labels, {user, hybrid});

  for (std::size_t i = 0; i < results.size(); ++i) {
    const BootstrapInterval ci = BootstrapRatioCI(results[i].hybrid.samples);
    std::printf("test %zu (train %.0f%%): hybrid costs %.2f%% of the "
                "user-defined policy (95%% CI %.2f-%.2f%%, coverage "
                "%.1f%%)\n",
                i + 1, 100.0 * results[i].train_fraction,
                100.0 * results[i].hybrid.overall_relative_cost,
                100.0 * ci.low, 100.0 * ci.high,
                100.0 * results[i].hybrid.overall_coverage);
  }
  std::printf("paper: >10%% average improvement; 89.18%% at 40%% training, "
              "with guaranteed full coverage.\n");
  Footer();
}

}  // namespace
}  // namespace aer::bench

int main() {
  aer::bench::Run();
  return 0;
}
