// Extension (paper Section 7): "designing initial policies that can be
// improved". The learned optimum is *local* — reachable only through
// actions the original policy ever tried — so the starting policy matters.
// This bench generates a trace under three different hand-written baselines
// and reports how much the learner improves each:
//
//   cheapest-first   the paper's production policy (T, B, B, I, I, RMA...)
//   impatient        one try per level, escalates fast
//   reimage-happy    skips REBOOT entirely and reimages early (wasteful,
//                    but it gives the learner rich strong-action data)
#include <cstdio>

#include "bench_common.h"

namespace aer::bench {
namespace {

struct Baseline {
  std::string name;
  EscalationConfig escalation;
};

void Run() {
  Header("ext_initial_policies", "Section 7 extension (initial policies)",
         "Hybrid savings at train fraction 0.4 when the original "
         "user-defined policy differs.");

  std::vector<Baseline> baselines;
  baselines.push_back({"cheapest-first", EscalationConfig{}});
  {
    EscalationConfig impatient;
    impatient.max_tries = {1, 1, 1, 1000};
    baselines.push_back({"impatient", impatient});
  }
  {
    EscalationConfig reimage_happy;
    reimage_happy.max_tries = {1, 0, 2, 1000};  // never reboots
    baselines.push_back({"reimage-happy", reimage_happy});
  }

  std::vector<std::string> labels;
  ChartSeries baseline_mttr{"baseline mean downtime (s)", {}};
  ChartSeries hybrid_rel{"hybrid rel cost", {}};
  for (const Baseline& baseline : baselines) {
    TraceConfig config = TraceConfigForScale("small");
    config.sim.num_machines = 800;
    config.escalation = baseline.escalation;
    const TraceDataset trace = GenerateTrace(config);

    const auto segmented = SegmentIntoProcesses(trace.result.log);
    MPatternConfig mining;
    const SymptomClustering clustering(segmented.processes, mining);
    const auto filtered =
        FilterNoisyProcesses(segmented.processes, clustering);
    std::vector<RecoveryProcess> clean;
    for (std::size_t i : filtered.clean) {
      clean.push_back(segmented.processes[i]);
    }

    ExperimentConfig experiment = DefaultExperimentConfig();
    experiment.user_policy = baseline.escalation;
    const ExperimentRunner runner(clean, trace.result.log.symptoms(),
                                  experiment);
    const ExperimentResult result = runner.RunOne(0.4, &GetPool());

    labels.push_back(baseline.name);
    baseline_mttr.values.push_back(
        static_cast<double>(trace.result.total_downtime) /
        static_cast<double>(trace.result.processes_completed));
    hybrid_rel.values.push_back(result.hybrid.overall_relative_cost);
    std::printf("  %-16s baseline MTTR %6.0f s -> hybrid keeps %.1f%% of "
                "its downtime (coverage %.1f%%)\n",
                baseline.name.c_str(), baseline_mttr.values.back(),
                100.0 * result.hybrid.overall_relative_cost,
                100.0 * result.hybrid.overall_coverage);
  }
  Report("ext_initial_policies", "baseline", labels,
         {baseline_mttr, hybrid_rel});

  std::printf("\nworse starting policies leave more on the table for the "
              "learner, and richer strong-action logs widen the local "
              "optimum it can reach.\n");
  Footer();
}

}  // namespace
}  // namespace aer::bench

int main() {
  aer::bench::Run();
  return 0;
}
