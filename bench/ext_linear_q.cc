// Extension (paper Section 7): "using generalization functions to
// approximate the Q-learning values" — linear function approximation vs the
// paper's table look-up, compared on the standard 40%-training experiment.
// The interesting trade: the linear model carries ~100x fewer parameters
// and generalizes across states the table never visited, at some cost in
// per-type optimality (it cannot represent order effects).
#include <cstdio>

#include "bench_common.h"
#include "eval/evaluator.h"
#include "rl/linear_q.h"

namespace aer::bench {
namespace {

void Run() {
  Header("ext_linear_q", "Section 7 extension (function approximation)",
         "Table-based vs linear-approximation Q-learning at train fraction "
         "0.4.");

  const BenchDataset& dataset = GetDataset();
  const ErrorTypeCatalog types(dataset.clean, 40);
  const TrainTestSplit split = SplitByTime(dataset.clean, 0.4);
  const SimulationPlatform train_platform(
      split.train, types, dataset.trace.result.log.symptoms());
  const SimulationPlatform test_platform(
      split.test, types, dataset.trace.result.log.symptoms());
  const PolicyEvaluator evaluator(test_platform);

  // Arm 1: the paper's tabular pipeline (selection tree).
  TrainerConfig table_config;
  table_config.max_sweeps = 40000;
  const QLearningTrainer table_trainer(train_platform, split.train,
                                       table_config);
  const SelectionTreeTrainer tree(table_trainer, SelectionTreeConfig{});
  const auto table_output = tree.TrainAll();
  const EvalSummary table_eval =
      evaluator.EvaluateTrained(table_output.policy, split.test);
  std::size_t table_entries = 0;
  for (const auto& r : table_output.per_type) {
    table_entries += r.states_explored;
  }

  // Arm 2: linear function approximation.
  ApproxTrainerConfig approx_config;
  approx_config.sweeps = 20000;
  const ApproxQLearningTrainer approx_trainer(train_platform, split.train,
                                              approx_config);
  const auto approx_output = approx_trainer.Train();
  const EvalSummary approx_eval =
      evaluator.EvaluateTrained(approx_output.policy, split.test);

  std::vector<std::string> labels = {"relative cost", "coverage"};
  Report("ext_linear_q", "metric", labels,
         {{"table",
           {table_eval.overall_relative_cost, table_eval.overall_coverage}},
          {"linear",
           {approx_eval.overall_relative_cost,
            approx_eval.overall_coverage}}});

  std::printf("parameters: table ~%zu explored states x 4 actions; linear "
              "%zu weights\n",
              table_entries, approx_output.q.num_parameters());

  // Per-type divergence: where does generalization hurt?
  std::printf("types where the linear policy differs from the table "
              "policy:\n");
  int shown = 0;
  for (std::size_t t = 0; t < types.num_types() && shown < 8; ++t) {
    const auto& table_seq = table_output.per_type[t].sequence;
    const auto& lin_seq = approx_output.sequences[t];
    if (table_seq == lin_seq) continue;
    std::string a, b;
    for (RepairAction x : table_seq) a += std::string(ActionName(x)) + " ";
    for (RepairAction x : lin_seq) b += std::string(ActionName(x)) + " ";
    std::printf("  type %2zu: table [%s] vs linear [%s]\n", t + 1, a.c_str(),
                b.c_str());
    ++shown;
  }
  if (shown == 0) std::printf("  (none)\n");
  Footer();
}

}  // namespace
}  // namespace aer::bench

int main() {
  aer::bench::Run();
  return 0;
}
