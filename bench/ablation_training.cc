// Ablations over the paper's design choices (DESIGN.md §5), all evaluated
// as the hybrid policy's relative cost at training fraction 0.4:
//
//  1. learning-rate schedule: α = 1/(1+visits) (paper) vs fixed α;
//  2. Boltzmann temperature schedule: paper default vs cold (greedy-ish)
//     vs slow decay;
//  3. the process cap N (paper: 20);
//  4. selection tree on/off and its escalation-seed hardening.
#include <cstdio>

#include "bench_common.h"

namespace aer::bench {
namespace {

struct Variant {
  std::string name;
  ExperimentConfig config;
};

void Run() {
  Header("ablation_training", "design-choice ablations (not a paper figure)",
         "Hybrid relative cost and trained coverage at train fraction 0.4 "
         "under configuration variants.");

  std::vector<Variant> variants;
  {
    Variant v{"paper defaults", DefaultExperimentConfig()};
    variants.push_back(v);
  }
  {
    Variant v{"fixed alpha=0.5", DefaultExperimentConfig()};
    v.config.trainer.fixed_alpha = 0.5;
    variants.push_back(v);
  }
  {
    Variant v{"fixed alpha=0.05", DefaultExperimentConfig()};
    v.config.trainer.fixed_alpha = 0.05;
    variants.push_back(v);
  }
  {
    Variant v{"cold start (T0=50)", DefaultExperimentConfig()};
    v.config.trainer.temperature.initial = 50.0;
    variants.push_back(v);
  }
  {
    Variant v{"slow anneal (decay=0.99995)", DefaultExperimentConfig()};
    v.config.trainer.temperature.decay = 0.99995;
    variants.push_back(v);
  }
  {
    Variant v{"cap N=5", DefaultExperimentConfig()};
    v.config.trainer.max_actions = 5;
    variants.push_back(v);
  }
  {
    Variant v{"cap N=10", DefaultExperimentConfig()};
    v.config.trainer.max_actions = 10;
    variants.push_back(v);
  }
  {
    Variant v{"TD(lambda=0.5)", DefaultExperimentConfig()};
    v.config.trainer.td_lambda = 0.5;
    variants.push_back(v);
  }
  {
    Variant v{"Monte-Carlo (lambda=1)", DefaultExperimentConfig()};
    v.config.trainer.td_lambda = 1.0;
    variants.push_back(v);
  }
  {
    Variant v{"discount gamma=0.95", DefaultExperimentConfig()};
    v.config.trainer.gamma = 0.95;
    variants.push_back(v);
  }
  {
    Variant v{"double Q-learning", DefaultExperimentConfig()};
    v.config.trainer.double_q = true;
    variants.push_back(v);
  }
  {
    Variant v{"no selection tree", DefaultExperimentConfig()};
    v.config.use_selection_tree = false;
    variants.push_back(v);
  }
  {
    Variant v{"tree, no escalation seeds", DefaultExperimentConfig()};
    v.config.tree.seed_escalation_candidates = false;
    variants.push_back(v);
  }
  {
    Variant v{"tree, wide branching (0.5)", DefaultExperimentConfig()};
    v.config.tree.closeness_threshold = 0.5;
    variants.push_back(v);
  }

  const BenchDataset& dataset = GetDataset();
  std::vector<std::string> labels;
  ChartSeries hybrid_rel{"hybrid rel cost", {}};
  ChartSeries coverage{"trained coverage", {}};
  for (const Variant& v : variants) {
    const ExperimentRunner runner(
        dataset.clean, dataset.trace.result.log.symptoms(), v.config);
    const ExperimentResult result = runner.RunOne(0.4, &GetPool());
    labels.push_back(v.name);
    hybrid_rel.values.push_back(result.hybrid.overall_relative_cost);
    coverage.values.push_back(result.trained.overall_coverage);
    std::printf("  %-30s hybrid rel %.4f, coverage %.4f\n", v.name.c_str(),
                result.hybrid.overall_relative_cost,
                result.trained.overall_coverage);
  }
  Report("ablation_training", "variant", labels, {hybrid_rel, coverage});
  Footer();
}

}  // namespace
}  // namespace aer::bench

int main() {
  aer::bench::Run();
  return 0;
}
