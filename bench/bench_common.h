// Shared scaffolding for the figure-reproduction benches: one synthetic
// dataset per process (sized by AER_SCALE), the standard noise-filtering
// front end, the tests-1-4 experiment runner, and uniform report output
// (header, numeric table, ASCII chart, optional CSV via AER_CSV_DIR).
#ifndef AER_BENCH_BENCH_COMMON_H_
#define AER_BENCH_BENCH_COMMON_H_

#include <string>
#include <vector>

#include "cluster/trace.h"
#include "common/ascii_chart.h"
#include "common/csv.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "eval/experiment.h"
#include "mining/symptom_clusters.h"

namespace aer::bench {

struct BenchDataset {
  TraceConfig config;
  TraceDataset trace;
  // All completed processes, time-ordered.
  std::vector<RecoveryProcess> all;
  // Noise-filtered (minp = 0.1) processes, time-ordered.
  std::vector<RecoveryProcess> clean;
  std::size_t clusters = 0;
  double cohesive_fraction = 0.0;
};

// Builds (once per process) the dataset for the configured scale.
const BenchDataset& GetDataset();

// The experiment configuration shared by the figure-8..12 benches: tests
// 1-4, selection-tree policy generation.
ExperimentConfig DefaultExperimentConfig();

// Runs tests 1-4 once per process and caches the results. Training shards
// by error type over GetPool(); the results are bit-identical to a serial
// run (docs/PARALLELISM.md).
const std::vector<ExperimentResult>& GetExperimentResults();
const ExperimentRunner& GetExperimentRunner();

// The process-wide worker pool for figure regeneration, sized by
// AER_THREADS (default: hardware concurrency).
ThreadPool& GetPool();

// Report output helpers. Every bench starts with Header(), prints one or
// more Series blocks and ends with Footer(). Header() also begins the
// bench's machine-readable BENCH_<id>.json record (bench_json.h): Report()
// folds every series into its output checksum and Footer() writes the file.
void Header(const std::string& id, const std::string& paper_item,
            const std::string& description);
void Footer();

// Prints the table + bar chart and mirrors to CSV when AER_CSV_DIR is set.
void Report(const std::string& csv_name, const std::string& x_name,
            const std::vector<std::string>& labels,
            const std::vector<ChartSeries>& series, bool log_scale = false);

// "1".."40" style labels for per-error-type series (1-based like the paper).
std::vector<std::string> TypeLabels(std::size_t n);

}  // namespace aer::bench

#endif  // AER_BENCH_BENCH_COMMON_H_
