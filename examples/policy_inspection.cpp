// Policy inspection: a diagnostician's view of what the learner actually
// decided and why. For the most frequent error types this prints
//   - the user-defined policy's action sequence,
//   - the learned sequence and where it deviates,
//   - the Q values at the root state,
//   - the selection tree's candidate sequences and their exact evaluations,
//   - the exhaustive-search optimum as a reference.
//
// Useful when deciding whether to trust a generated policy before
// deployment — the paper's Section 5.1 analysis ("the trained policy will
// try a stronger repair action at the beginning") done mechanically.
#include <cstdio>
#include <string>

#include "cluster/trace.h"
#include "eval/split.h"
#include "mining/symptom_clusters.h"
#include "rl/selection_tree.h"

namespace {

std::string SequenceString(const aer::ActionSequence& sequence) {
  std::string out;
  for (aer::RepairAction a : sequence) {
    out += std::string(aer::ActionName(a)) + " ";
  }
  return out.empty() ? "(empty)" : out;
}

}  // namespace

int main() {
  // Data + pipeline front end.
  const aer::TraceDataset dataset =
      aer::GenerateTrace(aer::TraceConfigForScale("small"));
  const auto segmented = aer::SegmentIntoProcesses(dataset.result.log);
  aer::MPatternConfig mining;
  const aer::SymptomClustering clustering(segmented.processes, mining);
  const auto filtered =
      aer::FilterNoisyProcesses(segmented.processes, clustering);
  std::vector<aer::RecoveryProcess> clean;
  for (std::size_t i : filtered.clean) clean.push_back(segmented.processes[i]);

  const aer::ErrorTypeCatalog types(clean, 40);
  const aer::SimulationPlatform platform(clean, types,
                                         dataset.result.log.symptoms());
  aer::TrainerConfig trainer_config;
  trainer_config.max_sweeps = 40000;
  const aer::QLearningTrainer trainer(platform, clean, trainer_config);
  const aer::SelectionTreeConfig tree_config;
  const aer::SelectionTreeTrainer tree(trainer, tree_config);

  // What would the user-defined policy do? (Its escalation sequence is the
  // same for every type.)
  aer::UserDefinedPolicy user;
  std::printf("user-defined escalation (all types): ");
  {
    std::vector<aer::RepairAction> tried;
    for (int i = 0; i < 6; ++i) {
      aer::RecoveryContext ctx;
      ctx.tried = tried;
      const aer::RepairAction a = user.ChooseAction(ctx);
      std::printf("%s ", std::string(aer::ActionName(a)).c_str());
      tried.push_back(a);
    }
    std::printf("...\n\n");
  }

  for (aer::ErrorTypeId type = 0; type < 8; ++type) {
    const auto processes = trainer.processes_of(type);
    if (processes.empty()) continue;
    const std::string& name =
        dataset.result.log.symptoms().Name(types.symptom_of(type));

    aer::QTable table;
    const aer::TypeTrainingResult result = tree.TrainType(type, &table);

    std::printf("== type %d: %s (%zu training processes) ==\n", type + 1,
                name.c_str(), processes.size());
    std::printf("  learned:   %s (converged at sweep %lld)\n",
                SequenceString(result.sequence).c_str(),
                static_cast<long long>(result.sweeps));

    // Root-state Q values.
    const aer::StateKey root = aer::EncodeState(type, {});
    std::printf("  Q(root):   ");
    for (aer::RepairAction a : aer::kAllActions) {
      if (!table.Has(root, a)) continue;
      std::printf("%s=%.0f(%lldx) ", std::string(aer::ActionName(a)).c_str(),
                  table.Q(root, a),
                  static_cast<long long>(table.Visits(root, a)));
    }
    std::printf("\n");

    // Selection-tree candidates with their exact evaluations.
    const auto candidates = aer::BuildCandidateSequences(
        table, type, trainer_config.max_actions, tree_config);
    std::printf("  tree candidates:\n");
    for (std::size_t c = 0; c < candidates.size() && c < 4; ++c) {
      const auto eval = aer::EvaluateSequence(
          candidates[c], processes, type, platform.estimator(),
          trainer_config.max_actions);
      std::printf("    %-36s mean cost %.0f s, cures %lld/%lld\n",
                  SequenceString(candidates[c]).c_str(), eval.mean_cost,
                  static_cast<long long>(eval.cured_by_sequence),
                  static_cast<long long>(eval.processes));
    }

    // Exhaustive reference (small search space: observed actions only).
    const aer::ActionSequence exact = aer::ExactBestSequence(
        processes, type, platform.estimator(), trainer_config.max_actions);
    const auto exact_eval = aer::EvaluateSequence(
        exact, processes, type, platform.estimator(),
        trainer_config.max_actions);
    const auto learned_eval = aer::EvaluateSequence(
        result.sequence, processes, type, platform.estimator(),
        trainer_config.max_actions);
    std::printf("  exhaustive optimum: %s (mean %.0f s; learned policy "
                "mean %.0f s)\n\n",
                SequenceString(exact).c_str(), exact_eval.mean_cost,
                learned_eval.mean_cost);
  }
  return 0;
}
