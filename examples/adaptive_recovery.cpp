// Adaptive recovery: the paper's claim that a learning-based policy "can
// adapt to the change of the environment without human involvement".
//
// Timeline:
//   period 1: normal environment; learn policy P1 from the log.
//   period 2: the environment shifts — a software update corrupts the most
//             frequent fault's recovery behaviour so REBOOT stops working
//             (it now needs REIMAGE). Deploying the stale P1 hurts exactly
//             this type; the closed loop retrains on the new log and the
//             refreshed policy P2 picks REIMAGE straight away.
#include <cstdio>
#include <string>

#include "cluster/trace.h"
#include "core/policy_generator.h"
#include "rl/policy.h"

namespace {

std::string SequenceOf(const aer::TrainedPolicy& policy,
                       const std::string& symptom) {
  const auto* entry = policy.FindType(symptom);
  if (entry == nullptr) return "(type unknown)";
  std::string out;
  for (aer::RepairAction a : entry->sequence) {
    out += std::string(aer::ActionName(a)) + " ";
  }
  return out;
}

double MeanDowntimeOfFault(const aer::SimulationResult& result,
                           int fault_index) {
  double total = 0.0;
  std::int64_t count = 0;
  for (const aer::ProcessGroundTruth& gt : result.ground_truth) {
    if (gt.fault_index != fault_index) continue;
    total += static_cast<double>(gt.end - gt.start);
    ++count;
  }
  return count > 0 ? total / static_cast<double>(count) : 0.0;
}

}  // namespace

int main() {
  aer::TraceConfig config = aer::TraceConfigForScale("small");
  const std::string fault0 =
      aer::MakeDefaultCatalog(config.catalog).faults[0].primary_symptom;

  // ---- Period 1: normal environment ---------------------------------------
  std::printf("Period 1: normal environment\n");
  const aer::TraceDataset period1 = aer::GenerateTrace(config);
  aer::PolicyGenerator generator;
  const aer::TrainedPolicy p1 = generator.Generate(period1.result.log);
  std::printf("  learned rule for %s: %s\n", fault0.c_str(),
              SequenceOf(p1, fault0).c_str());

  // ---- Environment change --------------------------------------------------
  // The stuck-service fault now resists REBOOT (e.g. the hang corrupts
  // on-disk state); only REIMAGE cures it.
  aer::FaultCatalog changed = aer::MakeDefaultCatalog(config.catalog);
  changed.faults[0]
      .responses[static_cast<std::size_t>(
          aer::ActionIndex(aer::RepairAction::kReboot))]
      .cure_probability = 0.05;
  changed.faults[0].Validate();
  std::printf("\nEnvironment change: REBOOT no longer cures %s "
              "(cure probability 0.90 -> 0.05)\n",
              fault0.c_str());

  // ---- Period 2 under the STALE policy ------------------------------------
  aer::ClusterSimConfig period2 = config.sim;
  period2.seed = config.sim.seed + 77;
  {
    aer::ClusterSimulator sim(period2, changed);
    aer::UserDefinedPolicy fallback(config.escalation);
    aer::HybridPolicy stale(p1, fallback);
    const aer::SimulationResult result = sim.Run(stale);
    std::printf("\nPeriod 2 under the stale policy:\n");
    std::printf("  mean downtime of the changed fault: %.0f s "
                "(the stale REBOOT-first rule retries in vain)\n",
                MeanDowntimeOfFault(result, 0));

    // ---- Closed loop: retrain on the new log, no human in the loop --------
    const aer::TrainedPolicy p2 = generator.Generate(result.log);
    std::printf("\nRetrained from period 2's log:\n");
    std::printf("  refreshed rule for %s: %s\n", fault0.c_str(),
                SequenceOf(p2, fault0).c_str());

    // ---- Period 3 under the refreshed policy -------------------------------
    aer::ClusterSimConfig period3 = config.sim;
    period3.seed = config.sim.seed + 154;
    aer::ClusterSimulator sim3(period3, changed);
    aer::UserDefinedPolicy fallback3(config.escalation);
    aer::HybridPolicy refreshed(p2, fallback3);
    const aer::SimulationResult result3 = sim3.Run(refreshed);

    // Baseline for period 3: the stale policy on identical conditions.
    aer::ClusterSimulator sim3_stale(period3, changed);
    aer::UserDefinedPolicy fallback3s(config.escalation);
    aer::HybridPolicy stale3(p1, fallback3s);
    const aer::SimulationResult result3_stale = sim3_stale.Run(stale3);

    const double fresh = MeanDowntimeOfFault(result3, 0);
    const double old = MeanDowntimeOfFault(result3_stale, 0);
    std::printf("\nPeriod 3 (same incidents, both policies):\n");
    std::printf("  stale policy:     %.0f s mean downtime for the changed "
                "fault\n", old);
    std::printf("  refreshed policy: %.0f s mean downtime (%.0f%% of "
                "stale)\n", fresh, 100.0 * fresh / old);
    std::printf("\nThe loop adapted to the environment change without human "
                "involvement.\n");
  }
  return 0;
}
