// Quickstart: learn a recovery policy from a recovery log in ~5 calls.
//
//   1. Get a recovery log (here: synthesized by the bundled cluster
//      simulator; in production: your monitoring system's event stream).
//   2. PolicyGenerator::Generate() — segmentation, symptom clustering,
//      noise filtering, error-type induction and Q-learning, end to end.
//   3. Wrap the result in a HybridPolicy so every error state stays covered.
//   4. Evaluate the policy on held-out incidents.
//   5. Save the policy to a file for deployment.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>
#include <sstream>

#include "cluster/trace.h"
#include "core/policy_generator.h"
#include "eval/experiment.h"
#include "mining/symptom_clusters.h"

int main() {
  // --- 1. A recovery log: <time, machine, description> entries ------------
  aer::TraceConfig trace_config = aer::TraceConfigForScale("small");
  const aer::TraceDataset dataset = aer::GenerateTrace(trace_config);
  std::printf("recovery log: %zu entries from %d machines over %lld days\n",
              dataset.result.log.size(), trace_config.sim.num_machines,
              static_cast<long long>(trace_config.sim.duration / aer::kDay));

  // --- 2. Learn a policy ---------------------------------------------------
  aer::PolicyGenerator generator;  // paper-default configuration
  aer::PolicyGenerationReport report;
  const aer::TrainedPolicy trained =
      generator.Generate(dataset.result.log, &report);
  std::printf("\nlearned %zu per-error-type rules "
              "(%zu processes, %.1f%% kept after noise filtering)\n",
              trained.num_types(), report.total_processes,
              100.0 * static_cast<double>(report.clean_processes) /
                  static_cast<double>(report.total_processes));

  // A few of the learned rules:
  std::printf("\n  %-28s  learned action sequence\n", "error type");
  for (std::size_t i = 0; i < trained.entries().size() && i < 6; ++i) {
    const auto& entry = trained.entries()[i];
    std::string seq;
    for (aer::RepairAction a : entry.sequence) {
      seq += std::string(aer::ActionName(a)) + " ";
    }
    std::printf("  %-28s  %s\n", entry.symptom_name.c_str(), seq.c_str());
  }

  // --- 3. Deployable policy: trained rules + user-defined fallback --------
  aer::UserDefinedPolicy fallback;
  aer::HybridPolicy policy(trained, fallback);

  // --- 4. How much downtime would it save? --------------------------------
  // Evaluate on the latest 60% of the log (train/test split by time).
  const auto segmented = aer::SegmentIntoProcesses(dataset.result.log);
  aer::MPatternConfig mining;
  const aer::SymptomClustering clustering(segmented.processes, mining);
  const auto filtered =
      aer::FilterNoisyProcesses(segmented.processes, clustering);
  std::vector<aer::RecoveryProcess> clean;
  for (std::size_t i : filtered.clean) clean.push_back(segmented.processes[i]);

  aer::ExperimentConfig experiment;
  const aer::ExperimentRunner runner(clean, dataset.result.log.symptoms(),
                                     experiment);
  const aer::ExperimentResult result = runner.RunOne(0.4);
  std::printf("\non the held-out 60%% of the log, the hybrid policy costs "
              "%.1f%% of the original downtime\n",
              100.0 * result.hybrid.overall_relative_cost);

  // --- 5. Save for deployment ----------------------------------------------
  std::ostringstream out;
  trained.Write(out);
  std::printf("\nserialized policy (%zu bytes); first line:\n  %s\n",
              out.str().size(),
              out.str().substr(0, out.str().find('\n')).c_str());
  return 0;
}
