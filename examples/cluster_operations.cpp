// Cluster operations scenario: a fleet operator runs six months under the
// hand-written escalation policy, learns a policy from the accumulated
// recovery log, and A/B-tests it online over the *next* period — the
// workload the paper's introduction motivates (thousands of servers, faults
// cured by rebooting/reimaging without ever finding root causes).
//
// Demonstrates: ClusterSimulator as a production stand-in, PolicyGenerator,
// HybridPolicy deployment, and honest online measurement (mean downtime per
// incident, not replay estimates).
#include <algorithm>
#include <cstdio>
#include <map>
#include <string>

#include "cluster/trace.h"
#include "core/policy_generator.h"
#include "rl/policy.h"

namespace {

struct PeriodStats {
  double mean_downtime_s = 0.0;
  std::int64_t incidents = 0;
  std::map<std::string, std::pair<double, std::int64_t>> by_fault;
};

PeriodStats Summarize(const aer::SimulationResult& result,
                      const aer::FaultCatalog& catalog) {
  PeriodStats stats;
  double total = 0.0;
  for (const aer::ProcessGroundTruth& gt : result.ground_truth) {
    const double downtime = static_cast<double>(gt.end - gt.start);
    total += downtime;
    ++stats.incidents;
    auto& [sum, count] =
        stats.by_fault[catalog.faults[static_cast<std::size_t>(
                                          gt.fault_index)]
                           .name];
    sum += downtime;
    ++count;
  }
  stats.mean_downtime_s =
      stats.incidents > 0 ? total / static_cast<double>(stats.incidents) : 0;
  return stats;
}

}  // namespace

int main() {
  // ---- Period 1: operate under the hand-written policy -------------------
  aer::TraceConfig config = aer::TraceConfigForScale("small");
  config.sim.num_machines = 600;
  std::printf("Period 1: %d machines, %lld days, user-defined escalation "
              "policy...\n",
              config.sim.num_machines,
              static_cast<long long>(config.sim.duration / aer::kDay));
  const aer::TraceDataset period1 = aer::GenerateTrace(config);
  std::printf("  %lld incidents, %.1f hours mean downtime\n",
              static_cast<long long>(period1.result.processes_completed),
              static_cast<double>(period1.result.total_downtime) /
                  static_cast<double>(period1.result.processes_completed) /
                  3600.0);

  // ---- Learn from period 1's log ------------------------------------------
  std::printf("\nLearning a recovery policy from period 1's log...\n");
  aer::PolicyGenerator generator;
  aer::PolicyGenerationReport report;
  const aer::TrainedPolicy trained =
      generator.Generate(period1.result.log, &report);
  std::printf("  %zu error types, %zu symptom clusters, %.2f%% of processes "
              "kept\n",
              report.error_types, report.symptom_clusters,
              100.0 * static_cast<double>(report.clean_processes) /
                  static_cast<double>(report.total_processes));

  // ---- Period 2: A/B the next six months ----------------------------------
  aer::TraceConfig period2 = config;
  period2.sim.seed = config.sim.seed + 1000;  // new faults, same environment

  std::printf("\nPeriod 2 (same fleet, fresh incidents), arm A: "
              "user-defined policy\n");
  const aer::FaultCatalog catalog = aer::MakeDefaultCatalog(period2.catalog);
  aer::ClusterSimulator sim_a(period2.sim, catalog);
  aer::UserDefinedPolicy user_a(period2.escalation);
  const aer::SimulationResult arm_a = sim_a.Run(user_a);
  const PeriodStats stats_a = Summarize(arm_a, catalog);

  std::printf("Period 2, arm B: hybrid (RL-trained + fallback)\n");
  aer::ClusterSimulator sim_b(period2.sim, catalog);
  aer::UserDefinedPolicy user_b(period2.escalation);
  aer::HybridPolicy hybrid(trained, user_b);
  const aer::SimulationResult arm_b = sim_b.Run(hybrid);
  const PeriodStats stats_b = Summarize(arm_b, catalog);

  std::printf("\n  %-12s %14s %14s\n", "", "arm A (user)", "arm B (hybrid)");
  std::printf("  %-12s %14lld %14lld\n", "incidents",
              static_cast<long long>(stats_a.incidents),
              static_cast<long long>(stats_b.incidents));
  std::printf("  %-12s %13.1fs %13.1fs\n", "mean MTTR",
              stats_a.mean_downtime_s, stats_b.mean_downtime_s);
  std::printf("  => hybrid mean downtime is %.1f%% of the user-defined "
              "policy's\n",
              100.0 * stats_b.mean_downtime_s / stats_a.mean_downtime_s);

  // Per-fault drill-down for the five biggest movers with decent samples.
  std::printf("\n  biggest per-fault improvements (>= 20 incidents in both "
              "arms):\n");
  std::vector<std::pair<double, std::string>> movers;
  for (const auto& [fault, sum_count] : stats_a.by_fault) {
    const auto it = stats_b.by_fault.find(fault);
    if (it == stats_b.by_fault.end()) continue;
    const auto& [sum_a, n_a] = sum_count;
    const auto& [sum_b, n_b] = it->second;
    if (n_a < 20 || n_b < 20) continue;
    const double ratio = (sum_b / static_cast<double>(n_b)) /
                         (sum_a / static_cast<double>(n_a));
    movers.push_back({ratio, fault});
  }
  std::sort(movers.begin(), movers.end());
  for (std::size_t i = 0; i < movers.size() && i < 5; ++i) {
    std::printf("    %-24s mean downtime ratio %.2f\n",
                movers[i].second.c_str(), movers[i].first);
  }
  return 0;
}
