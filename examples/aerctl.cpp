// aerctl — a command-line front end over the library's file-based workflow:
//
//   aerctl generate  --out trace.log [--scale small|default|large] [--seed N]
//   aerctl summarize --log trace.log
//   aerctl mine      --log trace.log [--minp 0.1]
//   aerctl train     --log trace.log --out policy.txt [--sweeps N] [--no-tree]
//   aerctl evaluate  --log trace.log --policy policy.txt [--train-fraction F]
//   aerctl simulate  --policy policy.txt [--scale ...] [--seed N]
//
// `generate` synthesizes a cluster trace; `train` learns a policy and writes
// it as text; `evaluate` replays it against the held-out tail of a log;
// `simulate` deploys it online (hybrid) against a fresh simulation and
// reports the A/B against the user-defined policy. Everything round-trips
// through ordinary files, the way an operator would wire the system into
// cron.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <string>

#include "cluster/trace.h"
#include "cluster/user_policy.h"
#include "core/guarded_policy.h"
#include "core/policy_generator.h"
#include "ctrl/harness.h"
#include "eval/experiment.h"
#include "inject/harness.h"
#include "log/log_report.h"
#include "mining/symptom_clusters.h"
#include "common/profiler.h"
#include "obs/chrome_trace.h"
#include "obs/critical_path.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/trace_collector.h"
#include "obs/trace_dag.h"
#include "obs/tracer.h"
#include "rl/policy_diff.h"

namespace {

using namespace aer;

// --- tiny flag parser -------------------------------------------------------

class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected argument: %s\n", argv[i]);
        ok_ = false;
        return;
      }
      key = key.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "";  // boolean flag
      }
    }
  }

  bool ok() const { return ok_; }
  bool Has(const std::string& key) const { return values_.contains(key); }
  std::string Get(const std::string& key, const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stod(it->second);
  }
  long long GetInt(const std::string& key, long long fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stoll(it->second);
  }

 private:
  std::map<std::string, std::string> values_;
  bool ok_ = true;
};

int Usage() {
  std::printf(
      "aerctl — automatic error recovery, end to end\n"
      "\n"
      "  aerctl generate  --out trace.log [--scale small|default|large] "
      "[--seed N]\n"
      "  aerctl summarize --log trace.log\n"
      "  aerctl mine      --log trace.log [--minp 0.1]\n"
      "  aerctl train     --log trace.log --out policy.txt [--sweeps N] "
      "[--no-tree]\n"
      "  aerctl evaluate  --log trace.log --policy policy.txt "
      "[--train-fraction 0.4]\n"
      "  aerctl simulate  --policy policy.txt [--scale small] [--seed N]\n"
      "  aerctl diff      --old old.txt --new new.txt [--log recent.log]\n"
      "  aerctl metrics   [--incidents N] [--seed N] [--clean] [--json]\n"
      "  aerctl trace     [--incidents N] [--seed N] [--clean] "
      "[--type SYMPTOM] [--top N] [--json]\n"
      "  aerctl trace     --dag|--critical-path|--chrome [--cluster N] "
      "[--seed N]\n"
      "  aerctl timeseries [--incidents N] [--seed N] [--clean] "
      "[--window SECONDS] [--capacity N] [--json]\n"
      "  aerctl profile   [--incidents N] [--seed N] [--clean] [--wall] "
      "[--json]\n");
  return 0;
}

// Lenient ingestion: a garbled line in an operator-supplied log costs one
// entry, not the whole run. Damage counts are reported on stderr (and in
// full by `summarize`, which threads the parse result into the report).
std::optional<RecoveryLog> LoadLog(const std::string& path,
                                   LogParseResult* parse_out = nullptr) {
  RecoveryLog log;
  const LogParseResult parse =
      RecoveryLog::ReadFile(path, log, LogParseMode::kLenient);
  if (!parse.ok) {
    std::fprintf(stderr, "error: cannot read log %s: %s\n", path.c_str(),
                 parse.first_error.c_str());
    return std::nullopt;
  }
  if (parse.skipped > 0 || parse.repaired > 0) {
    std::fprintf(stderr,
                 "warning: %s: %zu malformed line(s) skipped, %zu "
                 "repaired (first at line %zu: %s)\n",
                 path.c_str(), parse.skipped, parse.repaired,
                 parse.first_error_line, parse.first_error.c_str());
  }
  if (parse_out != nullptr) *parse_out = parse;
  return log;
}

// --- subcommands -------------------------------------------------------------

int Generate(const Flags& flags) {
  const std::string out = flags.Get("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "generate: --out is required\n");
    return 1;
  }
  TraceConfig config = TraceConfigForScale(flags.Get("scale", "small"));
  config.sim.seed = static_cast<std::uint64_t>(
      flags.GetInt("seed", static_cast<long long>(config.sim.seed)));
  const TraceDataset dataset = GenerateTrace(config);
  dataset.result.log.WriteFile(out);
  std::printf("wrote %zu entries (%lld recovery processes, %d machines, "
              "%lld days) to %s\n",
              dataset.result.log.size(),
              static_cast<long long>(dataset.result.processes_completed),
              config.sim.num_machines,
              static_cast<long long>(config.sim.duration / kDay), out.c_str());
  return 0;
}

int Summarize(const Flags& flags) {
  LogParseResult parse;
  const auto log = LoadLog(flags.Get("log", ""), &parse);
  if (!log.has_value()) return 1;
  const LogReport report = BuildLogReport(*log, parse);
  std::printf("%s", FormatLogReport(report, log->symptoms()).c_str());
  return 0;
}

int Mine(const Flags& flags) {
  const auto log = LoadLog(flags.Get("log", ""));
  if (!log.has_value()) return 1;
  const SegmentationResult segmented = SegmentIntoProcesses(*log);
  MPatternConfig config;
  config.minp = flags.GetDouble("minp", 0.1);
  const SymptomClustering clustering(segmented.processes, config);
  const NoiseFilterResult filtered =
      FilterNoisyProcesses(segmented.processes, clustering);
  std::printf("minp %.2f: %zu symptom clusters, %.2f%% of processes "
              "cohesive (%zu noisy filtered)\n",
              config.minp, clustering.clusters().size(),
              100.0 * filtered.clean_fraction, filtered.noisy.size());
  std::printf("largest clusters:\n");
  std::vector<const ItemSet*> by_size;
  for (const ItemSet& c : clustering.clusters()) by_size.push_back(&c);
  std::sort(by_size.begin(), by_size.end(),
            [](const ItemSet* a, const ItemSet* b) {
              return a->size() > b->size();
            });
  for (std::size_t i = 0; i < by_size.size() && i < 5; ++i) {
    std::string names;
    for (SymptomId s : *by_size[i]) {
      names += log->symptoms().Name(s) + " ";
    }
    std::printf("  { %s}\n", names.c_str());
  }
  return 0;
}

int Train(const Flags& flags) {
  const auto log = LoadLog(flags.Get("log", ""));
  if (!log.has_value()) return 1;
  const std::string out = flags.Get("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "train: --out is required\n");
    return 1;
  }
  PolicyGeneratorConfig config;
  config.trainer.max_sweeps = flags.GetInt("sweeps", 40000);
  config.use_selection_tree = !flags.Has("no-tree");
  const PolicyGenerator generator(config);
  PolicyGenerationReport report;
  const TrainedPolicy policy = generator.Generate(*log, &report);
  {
    std::ofstream os(out);
    policy.Write(os);
  }
  std::printf("trained %zu per-type rules from %zu clean processes "
              "(%zu clusters, %.2f%% type coverage); wrote %s\n",
              policy.num_types(), report.clean_processes,
              report.symptom_clusters, 100.0 * report.type_coverage,
              out.c_str());
  return 0;
}

int Evaluate(const Flags& flags) {
  const auto log = LoadLog(flags.Get("log", ""));
  if (!log.has_value()) return 1;
  TrainedPolicy policy;
  {
    std::ifstream is(flags.Get("policy", ""));
    if (!is.good() || !TrainedPolicy::Read(is, policy)) {
      std::fprintf(stderr, "error: cannot read policy\n");
      return 1;
    }
  }
  const double fraction = flags.GetDouble("train-fraction", 0.4);

  const SegmentationResult segmented = SegmentIntoProcesses(*log);
  MPatternConfig mining;
  const SymptomClustering clustering(segmented.processes, mining);
  const NoiseFilterResult filtered =
      FilterNoisyProcesses(segmented.processes, clustering);
  std::vector<RecoveryProcess> clean;
  for (std::size_t i : filtered.clean) {
    clean.push_back(segmented.processes[i]);
  }
  const ErrorTypeCatalog types(clean, 40);
  const TrainTestSplit split = SplitByTime(clean, fraction);
  const SimulationPlatform platform(split.test, types, log->symptoms());
  const PolicyEvaluator evaluator(platform);

  const EvalSummary trained = evaluator.EvaluateTrained(policy, split.test);
  UserDefinedPolicy user;
  HybridPolicy hybrid(policy, user);
  const EvalSummary hybrid_eval = evaluator.EvaluateFull(hybrid, split.test);

  std::printf("evaluated on the last %.0f%% of the log (%zu processes):\n",
              100.0 * (1.0 - fraction), split.test.size());
  std::printf("  trained policy: %.2f%% of original downtime, coverage "
              "%.2f%%\n",
              100.0 * trained.overall_relative_cost,
              100.0 * trained.overall_coverage);
  std::printf("  hybrid policy:  %.2f%% of original downtime, coverage "
              "%.2f%%\n",
              100.0 * hybrid_eval.overall_relative_cost,
              100.0 * hybrid_eval.overall_coverage);
  return 0;
}

int Diff(const Flags& flags) {
  const auto load = [](const std::string& path,
                       TrainedPolicy& out) -> bool {
    std::ifstream is(path);
    return is.good() && TrainedPolicy::Read(is, out);
  };
  TrainedPolicy old_policy;
  TrainedPolicy new_policy;
  if (!load(flags.Get("old", ""), old_policy) ||
      !load(flags.Get("new", ""), new_policy)) {
    std::fprintf(stderr, "diff: --old and --new must be readable policies\n");
    return 1;
  }
  if (!flags.Has("log")) {
    std::printf("%s", FormatPolicyDiff(DiffPolicies(old_policy, new_policy))
                          .c_str());
    return 0;
  }
  const auto log = LoadLog(flags.Get("log", ""));
  if (!log.has_value()) return 1;
  const SegmentationResult segmented = SegmentIntoProcesses(*log);
  const ErrorTypeCatalog types(segmented.processes, 40);
  const SimulationPlatform platform(segmented.processes, types,
                                    log->symptoms());
  std::printf("%s",
              FormatPolicyDiff(DiffPolicies(old_policy, new_policy, platform,
                                            segmented.processes))
                  .c_str());
  return 0;
}

// Shared by `metrics` and `trace`: drives a guarded policy through scripted
// incidents under fault injection with both observability sinks attached.
// Fully deterministic for a given (seed, incidents, clean) triple — the
// registry snapshot and the trace dump are byte-identical across runs
// (docs/OBSERVABILITY.md), which is what makes the output diffable.
void RunObservedPipeline(const Flags& flags, obs::Tracer& tracer,
                         obs::MetricsRegistry& metrics,
                         obs::TimeSeriesRecorder* recorder = nullptr) {
  const int count = static_cast<int>(flags.GetInt("incidents", 40));
  std::vector<HarnessIncident> incidents;
  const char* symptoms[] = {"Watchdog", "DiskError", "EventLog", "NicDown"};
  for (int i = 0; i < count; ++i) {
    HarnessIncident incident;
    incident.time = 100 + i * 700;
    incident.machine = i % 7;
    incident.symptom = symptoms[i % 4];
    incident.cure_strength = i % kNumActions;
    incidents.push_back(incident);
  }

  UserDefinedPolicy primary;
  UserDefinedPolicy fallback;
  GuardedPolicy guard(primary, fallback);
  guard.SetObservers(&tracer, &metrics);

  RecoveryManagerConfig manager_config;
  manager_config.action_timeout = 10 * kHour;
  manager_config.flap_threshold = 6;
  manager_config.flap_window = 12 * kHour;

  HarnessConfig harness_config;
  harness_config.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 1));
  if (!flags.Has("clean")) {
    harness_config.drop_event = 0.2;
    harness_config.duplicate_event = 0.1;
    harness_config.delay_event = 0.2;
    harness_config.hang_action = 0.1;
    harness_config.false_success = 0.1;
  }

  InjectionHarness harness(guard, manager_config, harness_config);
  harness.SetObservers(&tracer, &metrics);
  harness.SetTimeSeries(recorder);
  harness.Run(incidents);
}

// Windowed metric deltas over the same observed pipeline: the sim-time axis
// is sliced on --window (default one simulated hour), so the output shows
// *when* the counters moved, not just their totals.
int Timeseries(const Flags& flags) {
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  obs::TimeSeriesConfig config;
  config.window_width = flags.GetInt("window", kHour);
  config.capacity = static_cast<std::size_t>(flags.GetInt("capacity", 256));
  obs::TimeSeriesRecorder recorder(metrics, config);
  RunObservedPipeline(flags, tracer, metrics, &recorder);
  if (flags.Has("json")) {
    std::printf("%s\n", recorder.ExportJson().ToString().c_str());
  } else {
    std::printf("%s", recorder.ExportText().c_str());
  }
  return 0;
}

// Wall-clock scope profile of the observed pipeline. Without --wall only
// paths and call counts are printed — a pure function of the control flow,
// byte-stable across runs (the golden CLI tests pin it). --wall adds the
// measured milliseconds, which are machine-dependent by nature.
int Profile(const Flags& flags) {
#if !AER_PROFILING_IS_ON()
  (void)flags;
  std::printf("profiling disabled (built with -DAER_PROFILING=OFF)\n");
  return 0;
#else
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  ProfileRegistry::Global().Reset();
  RunObservedPipeline(flags, tracer, metrics);
  const std::vector<ProfileEntry> entries =
      ProfileRegistry::Global().Snapshot();
  const ProfileRegistry::FormatOptions options{.include_wall =
                                                   flags.Has("wall")};
  if (flags.Has("json")) {
    std::printf("%s\n",
                ProfileRegistry::ProfileToJson(entries, options)
                    .ToString()
                    .c_str());
  } else {
    std::printf("%s", ProfileRegistry::FormatProfile(entries, options)
                          .c_str());
  }
  return 0;
#endif
}

int Metrics(const Flags& flags) {
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  RunObservedPipeline(flags, tracer, metrics);
  obs::MetricsRegistry::ExportOptions options;
  options.include_volatile = false;
  if (flags.Has("json")) {
    std::printf("%s\n", metrics.ExportJson(options).ToString().c_str());
  } else {
    std::printf("%s", metrics.ExportText(options).c_str());
  }
  return 0;
}

// `trace --dag|--critical-path|--chrome` drives the distributed control
// plane (src/ctrl) instead of the event-level pipeline: a compressed-time
// cluster cures three scripted incidents while node 0 crashes mid-recovery
// and later restarts, so the collected causal DAG exercises dispatch,
// execution, timeout, takeover adoption, and the leadership overlay.
// Fully deterministic for a given (--cluster, --seed) pair — the DAG text,
// the critical-path attribution, and the Chrome trace JSON are byte-
// identical across runs (the golden CLI tests pin them).
void RunTracedControlPipeline(const Flags& flags,
                              obs::TraceCollector& traces) {
  ctrl::ControlHarnessConfig config;
  config.cluster_size = static_cast<int>(flags.GetInt("cluster", 3));
  config.tick_interval = 5;
  config.net_latency = 1;
  config.reemit_interval = 60;
  config.action_duration = {2, 5, 10, 20};
  config.coordinator.lease.lease_duration = 30;
  config.coordinator.membership.suspect_after = 15;
  config.coordinator.membership.evict_after = 60;
  config.coordinator.election_retry = 10;
  config.net.seed = static_cast<std::uint64_t>(flags.GetInt("seed", 1));

  RecoveryManagerConfig manager_config;
  manager_config.action_timeout = 120;

  NetFaultScript script;
  script.crashes.push_back({72, 0, 300});

  UserDefinedPolicy policy;
  ctrl::ControlPlaneHarness harness(policy, manager_config, config, script);
  harness.SetTraceCollector(&traces);
  harness.Run({
      {50, 7, "NoHeartbeat", 3},
      {150, 2, "Watchdog", 1},
      {400, 9, "Watchdog", 0},
  });
}

int Trace(const Flags& flags) {
  if (flags.Has("dag") || flags.Has("critical-path") || flags.Has("chrome")) {
    obs::TraceCollector traces;
    RunTracedControlPipeline(flags, traces);
    const std::vector<obs::TraceRecord> records = traces.Snapshot();
    if (flags.Has("chrome")) {
      std::printf("%s\n",
                  obs::ChromeTraceJson(obs::BuildTraceDag(records),
                                       obs::AnalyzeCriticalPaths(records))
                      .c_str());
    } else if (flags.Has("critical-path")) {
      std::printf(
          "%s",
          obs::FormatCriticalPaths(obs::AnalyzeCriticalPaths(records))
              .c_str());
    } else {
      std::printf("%s", obs::FormatTraceDag(obs::BuildTraceDag(records))
                            .c_str());
    }
    return 0;
  }
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  RunObservedPipeline(flags, tracer, metrics);
  std::vector<obs::Span> spans = tracer.Snapshot();
  if (flags.Has("type")) {
    spans = obs::Tracer::FilterByLabel(spans, flags.Get("type", ""));
  }
  if (flags.Has("top")) {
    spans = obs::Tracer::TopSlowest(
        spans, static_cast<std::size_t>(flags.GetInt("top", 10)), "recovery");
  }
  if (flags.Has("json")) {
    std::printf("%s\n", obs::Tracer::SpansToJson(spans).ToString().c_str());
  } else {
    std::printf("%s", obs::Tracer::FormatSpans(spans).c_str());
    std::printf("%lld spans (%lld dropped by ring)\n",
                static_cast<long long>(spans.size()),
                static_cast<long long>(tracer.dropped_count()));
  }
  return 0;
}

int Simulate(const Flags& flags) {
  TrainedPolicy policy;
  {
    std::ifstream is(flags.Get("policy", ""));
    if (!is.good() || !TrainedPolicy::Read(is, policy)) {
      std::fprintf(stderr, "error: cannot read policy\n");
      return 1;
    }
  }
  TraceConfig config = TraceConfigForScale(flags.Get("scale", "small"));
  config.sim.seed = static_cast<std::uint64_t>(
      flags.GetInt("seed", static_cast<long long>(config.sim.seed) + 1));
  const FaultCatalog catalog = MakeDefaultCatalog(config.catalog);

  ClusterSimulator sim_a(config.sim, catalog);
  UserDefinedPolicy user_a(config.escalation);
  const SimulationResult arm_a = sim_a.Run(user_a);

  ClusterSimulator sim_b(config.sim, catalog);
  UserDefinedPolicy user_b(config.escalation);
  HybridPolicy hybrid(policy, user_b);
  const SimulationResult arm_b = sim_b.Run(hybrid);

  const double mean_a = static_cast<double>(arm_a.total_downtime) /
                        static_cast<double>(arm_a.processes_completed);
  const double mean_b = static_cast<double>(arm_b.total_downtime) /
                        static_cast<double>(arm_b.processes_completed);
  std::printf("online A/B over %lld/%lld incidents:\n",
              static_cast<long long>(arm_a.processes_completed),
              static_cast<long long>(arm_b.processes_completed));
  std::printf("  user-defined:  %.0f s mean downtime\n", mean_a);
  std::printf("  hybrid:        %.0f s mean downtime (%.1f%% of user)\n",
              mean_b, 100.0 * mean_b / mean_a);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const Flags flags(argc, argv, 2);
  if (!flags.ok()) return 1;
  if (command == "generate") return Generate(flags);
  if (command == "summarize") return Summarize(flags);
  if (command == "mine") return Mine(flags);
  if (command == "train") return Train(flags);
  if (command == "evaluate") return Evaluate(flags);
  if (command == "simulate") return Simulate(flags);
  if (command == "diff") return Diff(flags);
  if (command == "metrics") return Metrics(flags);
  if (command == "trace") return Trace(flags);
  if (command == "timeseries") return Timeseries(flags);
  if (command == "profile") return Profile(flags);
  std::fprintf(stderr, "unknown command: %s\n\n", command.c_str());
  Usage();
  return 1;
}
