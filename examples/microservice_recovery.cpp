// Domain transfer: the paper's pipeline on a *microservice* fleet instead
// of bare-metal machines. The four repair actions map onto the service
// domain's escalation ladder (the Microreboot line of work the paper cites):
//
//   TRYNOP   -> drain & retry   (wait out a transient, ~20 s)
//   REBOOT   -> microreboot     (restart the one component, ~45 s)
//   REIMAGE  -> container rebuild (fresh image + warmup, ~4 min)
//   RMA      -> page the on-call (human investigates, ~45 min)
//
// Everything else — symptom names, cure probabilities, durations, incident
// rates — comes from a hand-built FaultCatalog, demonstrating that the
// cluster substrate is fully configurable and the learner is
// substrate-agnostic. The same PolicyGenerator learns, e.g., that a
// "DeadlockedPool" incident should skip the retry and go straight to the
// microreboot.
#include <cstdio>
#include <string>

#include "cluster/trace.h"
#include "core/policy_generator.h"
#include "rl/policy.h"

namespace {

using namespace aer;

// A hand-authored catalog of service incident types.
FaultCatalog ServiceCatalog() {
  struct Spec {
    const char* name;
    const char* symptom;
    std::vector<SecondarySymptom> aux;
    std::array<double, kNumActions> cure;  // retry, microreboot, rebuild, page
    double rate;
  };
  // Durations (s): retry 20, microreboot 45, rebuild 240, page 2700 — set
  // per action below; per-fault multipliers default to 1.
  const std::vector<Spec> specs = {
      {"Svc-OrderAPI-5xxBurst",
       "OrderAPI-5xxBurst",
       {{"OrderAPI-LatencySpike", 1.0}},
       {0.80, 0.95, 0.99, 1.0},  // transient: retry usually enough
       0.40},
      {"Svc-Checkout-DeadlockedPool",
       "Checkout-DeadlockedPool",
       {{"Checkout-ThreadsPinned", 1.0}, {"Checkout-QueueGrowth", 0.9}},
       {0.02, 0.92, 0.98, 1.0},  // retrying a deadlock is futile
       0.25},
      {"Svc-Search-IndexCorrupt",
       "Search-IndexCorrupt",
       {{"Search-ChecksumMismatch", 1.0}},
       {0.01, 0.05, 0.95, 1.0},  // needs the container rebuilt
       0.15},
      {"Svc-Payments-CertExpired",
       "Payments-CertExpired",
       {{"Payments-TlsHandshakeFail", 1.0}},
       {0.00, 0.01, 0.02, 1.0},  // only a human can rotate the cert
       0.05},
      {"Svc-Cart-CacheThrash",
       "Cart-CacheThrash",
       {{"Cart-EvictionStorm", 0.8}},
       {0.55, 0.85, 0.97, 1.0},
       0.15},
  };
  const double durations[kNumActions] = {20, 45, 240, 2700};

  FaultCatalog catalog;
  for (const Spec& spec : specs) {
    FaultType f;
    f.name = std::string(spec.name) + "-transient";  // tag for ArchetypeOf
    f.primary_symptom = spec.symptom;
    f.secondary_symptoms = spec.aux;
    for (int a = 0; a < kNumActions; ++a) {
      f.responses[static_cast<std::size_t>(a)] = {
          spec.cure[static_cast<std::size_t>(a)],
          durations[a],
          0.35};
    }
    f.relative_rate = spec.rate;
    catalog.faults.push_back(std::move(f));
  }
  catalog.generic_symptoms = {{"Mesh-RetryStorm", 0.01}};
  catalog.Validate();
  return catalog;
}

std::string SequenceOf(const TrainedPolicy& policy,
                       const std::string& symptom) {
  const auto* entry = policy.FindType(symptom);
  if (entry == nullptr) return "(not learned)";
  std::string out;
  for (RepairAction a : entry->sequence) {
    out += std::string(ActionName(a)) + " ";
  }
  return out;
}

}  // namespace

int main() {
  // Incidents arrive much faster than machine faults: 500 service replicas,
  // one incident per replica every ~2 days, two weeks of history.
  ClusterSimConfig sim;
  sim.num_machines = 500;  // replicas
  sim.duration = 14 * kDay;
  sim.machine_mtbf_days = 2.0;
  sim.mean_detection_delay_s = 15.0;  // alerting is fast in service land
  sim.min_decision_gap_s = 2;
  sim.max_decision_gap_s = 10;
  sim.seed = 4242;

  // The hand-written runbook: retry once, microreboot twice, rebuild twice,
  // then page.
  EscalationConfig runbook;
  runbook.max_tries = {1, 2, 2, 1000};
  runbook.recurring_failure_window = kHour;

  const FaultCatalog catalog = ServiceCatalog();
  ClusterSimulator simulator(sim, catalog);
  UserDefinedPolicy runbook_policy(runbook);
  const SimulationResult history = simulator.Run(runbook_policy);
  std::printf("two weeks of incidents under the runbook: %lld incidents, "
              "%.1f s mean time to recover\n",
              static_cast<long long>(history.processes_completed),
              static_cast<double>(history.total_downtime) /
                  static_cast<double>(history.processes_completed));

  // Learn from the incident log. Smaller N: paging twice is nonsense.
  PolicyGeneratorConfig config;
  config.trainer.max_actions = 8;
  config.max_types = 10;
  const PolicyGenerator generator(config);
  PolicyGenerationReport report;
  const TrainedPolicy learned = generator.Generate(history.log, &report);

  std::printf("\nlearned runbook (%zu incident types):\n",
              learned.num_types());
  for (const auto& spec :
       {"OrderAPI-5xxBurst", "Checkout-DeadlockedPool", "Search-IndexCorrupt",
        "Payments-CertExpired", "Cart-CacheThrash"}) {
    std::printf("  %-26s -> %s\n", spec, SequenceOf(learned, spec).c_str());
  }

  // Deploy for the next two weeks, A/B against the runbook.
  ClusterSimConfig next = sim;
  next.seed = sim.seed + 1;
  ClusterSimulator sim_a(next, catalog);
  UserDefinedPolicy arm_a(runbook);
  const SimulationResult a = sim_a.Run(arm_a);
  ClusterSimulator sim_b(next, catalog);
  UserDefinedPolicy fallback(runbook);
  HybridPolicy arm_b(learned, fallback);
  const SimulationResult b = sim_b.Run(arm_b);

  const double mean_a = static_cast<double>(a.total_downtime) /
                        static_cast<double>(a.processes_completed);
  const double mean_b = static_cast<double>(b.total_downtime) /
                        static_cast<double>(b.processes_completed);
  std::printf("\nnext two weeks, online A/B:\n");
  std::printf("  runbook: %.1f s mean recovery\n", mean_a);
  std::printf("  learned: %.1f s mean recovery (%.1f%% of runbook)\n",
              mean_b, 100.0 * mean_b / mean_a);
  std::printf("\nthe learner found the runbook's blind spots (deadlocks and "
              "index corruption don't deserve a retry) without being told "
              "anything about services.\n");
  return 0;
}
