# Correctness-tooling knobs: sanitizers, clang-tidy lint gate, -Werror.
#
#   -DAER_SANITIZE=address;undefined   (or "address,undefined")
#   -DAER_SANITIZE=thread
#   -DAER_LINT=ON        runs clang-tidy over every TU via CMAKE_CXX_CLANG_TIDY
#   -DAER_WERROR=ON      promotes warnings to errors (CI sets this)
#   -DAER_THREAD_SAFETY=ON   Clang only: -Werror=thread-safety proves the
#                            lock annotations (docs/STATIC_ANALYSIS.md)
#
# See docs/DEVELOPING.md for the full local workflow.

option(AER_WERROR "Treat compiler warnings as errors" OFF)
option(AER_LINT "Run clang-tidy on every translation unit" OFF)
option(AER_THREAD_SAFETY
       "Enforce Clang thread-safety analysis as errors (requires Clang)" OFF)
set(AER_SANITIZE "" CACHE STRING
    "Semicolon- or comma-separated sanitizers: address, undefined, thread, leak")

if(AER_WERROR)
  add_compile_options(-Werror)
endif()

# ---------------------------------------------------------------------------
# Clang thread-safety analysis
# ---------------------------------------------------------------------------
# The AER_* capability annotations (src/common/thread_annotations.h) expand
# to Clang attributes; this turns the analysis into a hard build gate. GCC
# neither implements the analysis nor accepts the flag, so demanding it
# there is a configuration error, not a silent no-op.
if(AER_THREAD_SAFETY)
  if(NOT CMAKE_CXX_COMPILER_ID MATCHES "Clang")
    message(FATAL_ERROR
            "AER_THREAD_SAFETY=ON requires Clang (-Wthread-safety); "
            "current compiler is ${CMAKE_CXX_COMPILER_ID}. "
            "Configure with CXX=clang++ or drop the option.")
  endif()
  add_compile_options(-Werror=thread-safety -Werror=thread-safety-beta)
  message(STATUS "aer: thread-safety analysis enforced")
endif()

# ---------------------------------------------------------------------------
# Sanitizers
# ---------------------------------------------------------------------------
if(AER_SANITIZE)
  # Accept both "address,undefined" and "address;undefined".
  string(REPLACE "," ";" _aer_sanitizers "${AER_SANITIZE}")

  set(_aer_san_flags "")
  foreach(_san IN LISTS _aer_sanitizers)
    string(STRIP "${_san}" _san)
    if(_san STREQUAL "address")
      list(APPEND _aer_san_flags -fsanitize=address)
    elseif(_san STREQUAL "undefined")
      # Recovery off: any UB report is a hard test failure, not a log line.
      list(APPEND _aer_san_flags -fsanitize=undefined
           -fno-sanitize-recover=undefined)
    elseif(_san STREQUAL "thread")
      list(APPEND _aer_san_flags -fsanitize=thread)
    elseif(_san STREQUAL "leak")
      list(APPEND _aer_san_flags -fsanitize=leak)
    else()
      message(FATAL_ERROR
              "AER_SANITIZE: unknown sanitizer '${_san}' "
              "(expected address, undefined, thread, or leak)")
    endif()
  endforeach()

  if("thread" IN_LIST _aer_sanitizers AND "address" IN_LIST _aer_sanitizers)
    message(FATAL_ERROR "AER_SANITIZE: thread and address are incompatible")
  endif()

  # Frame pointers keep sanitizer stacks readable; O1 keeps the instrumented
  # test suite fast enough without optimizing away the bugs we hunt.
  list(APPEND _aer_san_flags -fno-omit-frame-pointer -g)
  add_compile_options(${_aer_san_flags})
  add_link_options(${_aer_san_flags})

  # Sanitizer builds keep the debug-tier checks: they exist to catch exactly
  # the states the sanitizers make visible.
  add_compile_definitions(AER_FORCE_DCHECKS)

  message(STATUS "aer: sanitizers enabled: ${_aer_sanitizers}")
endif()

# ---------------------------------------------------------------------------
# clang-tidy gate
# ---------------------------------------------------------------------------
if(AER_LINT)
  find_program(AER_CLANG_TIDY_EXE NAMES clang-tidy clang-tidy-18 clang-tidy-17
               clang-tidy-16 clang-tidy-15)
  if(NOT AER_CLANG_TIDY_EXE)
    message(FATAL_ERROR
            "AER_LINT=ON but clang-tidy was not found in PATH. "
            "Install clang-tidy or configure with -DAER_LINT=OFF.")
  endif()
  # The profile (checks, naming rules, warnings-as-errors) lives in
  # .clang-tidy at the repo root so editors and CI agree.
  set(CMAKE_CXX_CLANG_TIDY "${AER_CLANG_TIDY_EXE}")
  message(STATUS "aer: clang-tidy gate enabled: ${AER_CLANG_TIDY_EXE}")
endif()
