# Script-mode helper for tests that assert a command FAILS (or succeeds)
# with particular output — the negative side of the static-analysis suite:
# arch_check fixtures that must be rejected and negative-compile cases that
# must not compile (see docs/STATIC_ANALYSIS.md).
#
# Usage:
#   cmake -DCMD="<exe>|<arg>|..." [-DEXPECT_FAIL=ON] [-DEXPECT_OUTPUT=<re>]
#         -P RunExpect.cmake
#
# CMD uses '|' as the argument separator so callers do not fight CMake's
# semicolon list escaping. EXPECT_FAIL=ON demands a nonzero exit status
# (default: demand zero). EXPECT_OUTPUT, when set, is a regex that must
# match the combined stdout+stderr regardless of exit status.

if(NOT DEFINED CMD)
  message(FATAL_ERROR "RunExpect: CMD is required")
endif()
string(REPLACE "|" ";" _cmd "${CMD}")

execute_process(COMMAND ${_cmd}
                RESULT_VARIABLE _rc
                OUTPUT_VARIABLE _out
                ERROR_VARIABLE _err)
set(_all "${_out}${_err}")

if(EXPECT_FAIL)
  if(_rc EQUAL 0)
    message(FATAL_ERROR
            "RunExpect: command succeeded but was expected to fail:\n"
            "  ${CMD}\noutput:\n${_all}")
  endif()
else()
  if(NOT _rc EQUAL 0)
    message(FATAL_ERROR
            "RunExpect: command failed (exit ${_rc}):\n"
            "  ${CMD}\noutput:\n${_all}")
  endif()
endif()

if(DEFINED EXPECT_OUTPUT AND NOT EXPECT_OUTPUT STREQUAL "")
  if(NOT _all MATCHES "${EXPECT_OUTPUT}")
    message(FATAL_ERROR
            "RunExpect: output did not match '${EXPECT_OUTPUT}':\n${_all}")
  endif()
endif()
