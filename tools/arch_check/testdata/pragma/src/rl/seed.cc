#include <random>
unsigned Seed() {
  // Justified exemption for the fixture: proves the escape hatch works.
  std::random_device device;  // arch-check: allow(taint)
  return device();
}
