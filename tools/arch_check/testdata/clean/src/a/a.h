#ifndef A_A_H_
#define A_A_H_
int LowLayer();
#endif
