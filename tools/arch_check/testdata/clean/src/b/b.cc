#include "a/a.h"
int HighLayer() { return LowLayer(); }
