#include <random>
unsigned Seed() {
  std::random_device device;
  return device();
}
