#include "eval/experiment.h"
int Generate() { return RunExperiment(); }
