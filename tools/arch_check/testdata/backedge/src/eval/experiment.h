#ifndef EVAL_EXPERIMENT_H_
#define EVAL_EXPERIMENT_H_
int RunExperiment();
#endif
