// arch_check — compiled architecture analyzer for the aer tree.
//
// Reads the checked-in layering manifest (layering.manifest), scans every
// C++ file under <root>/src, and enforces two rule families:
//
//   layering  The include graph must respect the manifest's layer order:
//             a module may include its own layer only through an explicit
//             `allow` edge, lower layers freely, and higher layers never.
//             A back-edge (core including eval, say) is how "temporarily
//             convenient" dependencies calcify; this check fails the build
//             the day they appear. Cycles among allowed edges are rejected
//             separately (rule `cycle`).
//
//   taint     Library code must be deterministic: wall clocks
//             (system_clock / steady_clock / high_resolution_clock),
//             std::random_device, rand()/srand()/time(), and raw mt19937
//             construction are forbidden outside the whitelisted files
//             (`taint-allow` lines — the profiler, the RNG facility
//             itself, and the crash recorder). Everything else derives
//             randomness from common/rng.h streams and time from SimTime.
//
// Escape hatch, mirroring aer_lint's pragma:
//     do_something();  // arch-check: allow(taint)
// suppresses findings of that rule on that line; use sparingly and justify
// in an adjacent comment.
//
// The tool is deliberately dependency-free (single translation unit, no
// repo headers) so CI can build it with a bare `g++ -std=c++20` before the
// main build exists. Exit status: 0 clean, 1 violations, 2 usage/IO error.
//
// Usage:
//   arch_check --root <repo_root> [--manifest <file>] [--json <out>]

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <tuple>
#include <utility>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Violation {
  std::string file;  // root-relative, forward slashes
  int line = 0;
  std::string rule;
  std::string message;
};

struct Manifest {
  // module -> layer index (0 = lowest).
  std::map<std::string, int> layer_of;
  // Explicit same-layer edges "a -> b".
  std::set<std::pair<std::string, std::string>> allowed;
  // Root-relative path prefixes exempt from the taint rule.
  std::vector<std::string> taint_allow;
};

[[noreturn]] void Die(const std::string& message) {
  std::fprintf(stderr, "arch_check: %s\n", message.c_str());
  std::exit(2);
}

std::string ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) Die("cannot read " + path.string());
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::vector<std::string> SplitWords(std::string_view line) {
  std::vector<std::string> words;
  std::string current;
  for (char c : line) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!current.empty()) words.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) words.push_back(std::move(current));
  return words;
}

Manifest ParseManifest(const fs::path& path) {
  Manifest manifest;
  std::istringstream in(ReadFile(path));
  std::string line;
  int layer = 0;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::vector<std::string> words = SplitWords(line);
    if (words.empty()) continue;
    const std::string where =
        path.filename().string() + ":" + std::to_string(lineno);
    if (words[0] == "layer") {
      if (words.size() < 2) Die(where + ": `layer` needs module names");
      for (std::size_t i = 1; i < words.size(); ++i) {
        if (!manifest.layer_of.emplace(words[i], layer).second) {
          Die(where + ": module '" + words[i] + "' listed twice");
        }
      }
      ++layer;
    } else if (words[0] == "allow") {
      // allow <from> -> <to...>
      if (words.size() < 4 || words[2] != "->") {
        Die(where + ": expected `allow <from> -> <to...>`");
      }
      for (std::size_t i = 3; i < words.size(); ++i) {
        manifest.allowed.emplace(words[1], words[i]);
      }
    } else if (words[0] == "taint-allow") {
      if (words.size() != 2) Die(where + ": `taint-allow` needs one prefix");
      manifest.taint_allow.push_back(words[1]);
    } else {
      Die(where + ": unknown directive '" + words[0] + "'");
    }
  }
  if (manifest.layer_of.empty()) Die(path.string() + ": no layers defined");
  return manifest;
}

// Replaces // and /* */ comment bodies with spaces (newlines preserved so
// line numbers survive). String and char literals pass through untouched —
// the include extractor needs them; the taint scanner blanks them per line.
std::string StripComments(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out += "  ";
          ++i;
        } else {
          if (c == '"') state = State::kString;
          if (c == '\'') state = State::kChar;
          out += c;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
          out += '\n';
        } else {
          out += ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          out += "  ";
          ++i;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kString:
      case State::kChar:
        out += c;
        if (c == '\\' && next != '\0') {
          out += next;
          ++i;
        } else if ((state == State::kString && c == '"') ||
                   (state == State::kChar && c == '\'')) {
          state = State::kCode;
        }
        break;
    }
  }
  return out;
}

// Blanks the contents of string/char literals in one (comment-free) line so
// token scans cannot match inside them.
std::string BlankLiterals(std::string_view line) {
  std::string out;
  out.reserve(line.size());
  char open = '\0';
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (open != '\0') {
      if (c == '\\') {
        out += "  ";
        ++i;
      } else if (c == open) {
        out += c;
        open = '\0';
      } else {
        out += ' ';
      }
    } else {
      if (c == '"' || c == '\'') open = c;
      out += c;
    }
  }
  return out;
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// `#include "path"` -> path; nullopt otherwise (angle includes are system
// headers, never module edges).
std::optional<std::string> ExtractInclude(std::string_view line) {
  std::size_t i = 0;
  auto skip_ws = [&] {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  };
  skip_ws();
  if (i >= line.size() || line[i] != '#') return std::nullopt;
  ++i;
  skip_ws();
  if (line.substr(i, 7) != "include") return std::nullopt;
  i += 7;
  skip_ws();
  if (i >= line.size() || line[i] != '"') return std::nullopt;
  const std::size_t start = ++i;
  const std::size_t end = line.find('"', start);
  if (end == std::string::npos) return std::nullopt;
  return std::string(line.substr(start, end - start));
}

// Rules suppressed by `arch-check: allow(rule[, rule...])` on this line.
std::set<std::string> PragmaRules(std::string_view line) {
  std::set<std::string> rules;
  const std::string_view tag = "arch-check: allow(";
  const auto at = line.find(tag);
  if (at == std::string_view::npos) return rules;
  const std::size_t start = at + tag.size();
  const auto close = line.find(')', start);
  if (close == std::string_view::npos) return rules;
  for (std::string& rule :
       SplitWords(std::string(line.substr(start, close - start)))) {
    while (!rule.empty() && rule.back() == ',') rule.pop_back();
    if (!rule.empty()) rules.insert(std::move(rule));
  }
  return rules;
}

// Identifier tokens that mark nondeterminism in library code. `call_only`
// tokens taint only when invoked (an identifier like `timeout` or a member
// named `time_` must not match).
struct TaintPattern {
  std::string_view token;
  bool call_only;
  std::string_view why;
};
constexpr TaintPattern kTaintPatterns[] = {
    {"random_device", false, "nondeterministic seed source"},
    {"system_clock", false, "wall-clock time"},
    {"steady_clock", false, "wall-clock time"},
    {"high_resolution_clock", false, "wall-clock time"},
    {"mt19937", false, "raw engine; derive streams via common/rng.h"},
    {"mt19937_64", false, "raw engine; derive streams via common/rng.h"},
    {"rand", true, "C PRNG"},
    {"srand", true, "C PRNG seeding"},
    {"time", true, "wall-clock time"},
};

void ScanTaint(const std::string& rel_path,
               const std::vector<std::string>& lines,
               const std::vector<std::string>& raw_lines,
               std::vector<Violation>& violations) {
  for (std::size_t n = 0; n < lines.size(); ++n) {
    const std::string scan = BlankLiterals(lines[n]);
    for (const TaintPattern& pattern : kTaintPatterns) {
      std::size_t from = 0;
      bool hit = false;
      while (!hit) {
        const auto at = scan.find(pattern.token, from);
        if (at == std::string::npos) break;
        from = at + 1;
        if (at > 0 && IsIdentChar(scan[at - 1])) continue;
        const std::size_t after = at + pattern.token.size();
        if (after < scan.size() && IsIdentChar(scan[after])) continue;
        if (pattern.call_only) {
          std::size_t i = after;
          while (i < scan.size() && (scan[i] == ' ' || scan[i] == '\t')) ++i;
          if (i >= scan.size() || scan[i] != '(') continue;
        }
        hit = true;
      }
      if (!hit) continue;
      if (PragmaRules(raw_lines[n]).count("taint") != 0) continue;
      violations.push_back(
          {rel_path, static_cast<int>(n + 1), "taint",
           std::string(pattern.token) + ": " + std::string(pattern.why) +
               " is forbidden in src/ outside the manifest's taint-allow "
               "list"});
    }
  }
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::string current;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) lines.push_back(std::move(current));
  return lines;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root;
  fs::path manifest_path;
  fs::path json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) Die("missing value for " + std::string(arg));
      return argv[++i];
    };
    if (arg == "--root") {
      root = value();
    } else if (arg == "--manifest") {
      manifest_path = value();
    } else if (arg == "--json") {
      json_path = value();
    } else {
      Die("unknown argument " + std::string(arg) +
          " (usage: arch_check --root DIR [--manifest FILE] [--json FILE])");
    }
  }
  if (root.empty()) Die("--root is required");
  if (manifest_path.empty()) {
    manifest_path = root / "tools" / "arch_check" / "layering.manifest";
  }
  const Manifest manifest = ParseManifest(manifest_path);

  const fs::path src = root / "src";
  if (!fs::is_directory(src)) Die("no src/ directory under " + root.string());
  std::vector<fs::path> files;
  for (const auto& entry : fs::recursive_directory_iterator(src)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext == ".h" || ext == ".cc") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());

  std::vector<Violation> violations;
  // module -> (dep module -> first (file, line) that created the edge).
  std::map<std::string, std::map<std::string, std::pair<std::string, int>>>
      edges;

  for (const fs::path& path : files) {
    const std::string rel =
        fs::relative(path, root).generic_string();  // "src/<module>/..."
    const std::string module = fs::relative(path, src).begin()->string();
    const auto my_layer = manifest.layer_of.find(module);
    if (my_layer == manifest.layer_of.end()) {
      violations.push_back(
          {rel, 1, "layering",
           "module '" + module + "' is not in the layering manifest"});
      continue;
    }

    const std::string text = ReadFile(path);
    const std::vector<std::string> raw_lines = SplitLines(text);
    const std::vector<std::string> lines = SplitLines(StripComments(text));

    bool taint_exempt = false;
    for (const std::string& prefix : manifest.taint_allow) {
      if (rel.rfind(prefix, 0) == 0) {
        taint_exempt = true;
        break;
      }
    }
    if (!taint_exempt) ScanTaint(rel, lines, raw_lines, violations);

    for (std::size_t n = 0; n < lines.size(); ++n) {
      const auto include = ExtractInclude(lines[n]);
      if (!include) continue;
      const auto slash = include->find('/');
      if (slash == std::string::npos) continue;  // same-dir or foreign
      const std::string dep = include->substr(0, slash);
      const auto dep_layer = manifest.layer_of.find(dep);
      if (dep_layer == manifest.layer_of.end()) continue;  // not a module
      if (dep == module) continue;
      edges[module].try_emplace(dep, rel, static_cast<int>(n + 1));

      const bool ok =
          dep_layer->second < my_layer->second ||
          (dep_layer->second == my_layer->second &&
           manifest.allowed.count({module, dep}) != 0);
      if (ok) continue;
      if (PragmaRules(raw_lines[n]).count("layering") != 0) continue;
      const char* kind = dep_layer->second > my_layer->second
                             ? "back-edge"
                             : "unsanctioned same-layer edge";
      violations.push_back(
          {rel, static_cast<int>(n + 1), "layering",
           std::string(kind) + ": " + module + " -> " + dep +
               " (include of \"" + *include + "\") violates the manifest"});
    }
  }

  // Cycle detection over the observed module graph (the layer rule makes
  // cycles impossible unless `allow` edges form one within a layer).
  {
    std::map<std::string, int> state;  // 0 unvisited, 1 on stack, 2 done
    std::vector<std::string> stack;
    std::function<void(const std::string&)> visit =
        [&](const std::string& module) {
          state[module] = 1;
          stack.push_back(module);
          const auto it = edges.find(module);
          if (it != edges.end()) {
            for (const auto& [dep, site] : it->second) {
              if (state[dep] == 1) {
                std::string path_text = dep;
                for (auto at = stack.rbegin(); at != stack.rend(); ++at) {
                  path_text = *at + " -> " + path_text;
                  if (*at == dep) break;
                }
                violations.push_back({site.first, site.second, "cycle",
                                      "module cycle: " + path_text});
              } else if (state[dep] == 0) {
                visit(dep);
              }
            }
          }
          stack.pop_back();
          state[module] = 2;
        };
    for (const auto& [module, deps] : edges) {
      (void)deps;
      if (state[module] == 0) visit(module);
    }
  }

  std::sort(violations.begin(), violations.end(),
            [](const Violation& a, const Violation& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });

  for (const Violation& v : violations) {
    std::fprintf(stderr, "%s:%d: error: [%s] %s\n", v.file.c_str(), v.line,
                 v.rule.c_str(), v.message.c_str());
  }
  std::fprintf(stderr,
               "arch_check: %zu file(s) scanned, %zu violation(s)\n",
               files.size(), violations.size());

  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary);
    if (!out) Die("cannot write " + json_path.string());
    out << "{\n  \"files_scanned\": " << files.size()
        << ",\n  \"violations\": [";
    for (std::size_t i = 0; i < violations.size(); ++i) {
      const Violation& v = violations[i];
      out << (i == 0 ? "" : ",") << "\n    {\"file\": \"" << JsonEscape(v.file)
          << "\", \"line\": " << v.line << ", \"rule\": \"" << v.rule
          << "\", \"message\": \"" << JsonEscape(v.message) << "\"}";
    }
    out << (violations.empty() ? "" : "\n  ") << "]\n}\n";
  }

  return violations.empty() ? 0 : 1;
}
