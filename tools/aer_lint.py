#!/usr/bin/env python3
"""aer_lint: project-specific correctness rules no generic tool enforces.

Rules (all applied to comment- and string-stripped source, so prose never
trips them):

  rng-containment   No rand()/srand()/std::random_device/std <random> engines
                    or distributions outside src/common/rng.{h,cc}. Seeded
                    determinism (same seed -> bit-identical Q-table) is
                    load-bearing for figure reproduction; every draw must go
                    through aer::Rng.
  no-raw-assert     No raw assert(): it vanishes under NDEBUG and prints no
                    values. Use AER_CHECK* (always on) or AER_DCHECK* (debug
                    tier) from src/common/check.h. static_assert is fine.
  include-guard     Headers use guards named AER_<DIR>_<FILE>_H_ relative to
                    the source root (src/rl/qtable.h -> AER_RL_QTABLE_H_,
                    bench/bench_common.h -> AER_BENCH_BENCH_COMMON_H_).
  no-float          No `float` in library/bench code. Cost and downtime
                    accounting must be double (or integral sim-time); mixing
                    float into an accumulation silently changes every figure.
  no-unchecked-at   No container .at() in src/ or bench/: it throws a
                    context-free std::out_of_range. Bounds-check with
                    AER_CHECK_LT(...) << context, then index.
  unchecked-io      In the deserialization layers (src/log/, src/rl/), which
                    parse untrusted on-disk artifacts: no raw strto*/ato*/
                    std::sto* (use ParseInt64/ParseDouble/ParseHexU64 from
                    common/string_util.h — they reject junk instead of
                    silently returning 0 or throwing); no discarded-result
                    std::getline at statement position (test the stream);
                    and every fstream construction must be followed within a
                    few lines by a good()/is_open() check.
  no-direct-output  No std::cout/std::cerr/printf-family output in src/core/,
                    src/rl/, src/sim/: library layers report through return
                    values, AER_CHECK messages, or obs/ metrics and spans
                    (docs/OBSERVABILITY.md). Stray prints corrupt the CLI's
                    machine-readable output and bypass the observability
                    contract.
  mutex-annotation  In src/, no raw std::mutex / std::lock_guard /
                    std::unique_lock / std::scoped_lock /
                    std::condition_variable outside common/mutex.h: lock
                    through aer::Mutex / aer::MutexLock / aer::CondVar so
                    Clang's thread-safety analysis sees every acquisition
                    (docs/STATIC_ANALYSIS.md). Additionally, a src/ header
                    that declares an aer::Mutex member must guard at least
                    one field with AER_GUARDED_BY — an unannotated mutex
                    protects nothing the analysis can check.
  metric-catalog    Every aer_* metric registered in src/ or bench/ code
                    (GetCounter("aer_...") / GetGauge / GetHistogram /
                    GetStat) must appear in the frozen catalog in
                    docs/OBSERVABILITY.md. Metric names are API
                    (baselines and dashboards key on them); registering an
                    undocumented one silently grows the catalog. This rule
                    matches the raw source (names live inside string
                    literals); tests are exempt — their throwaway
                    aer_test_* names are not catalog entries.
  stage-catalog     Every critical-path stage name wrapped in
                    AER_TRACE_STAGE("...") (src/obs/critical_path.*) must
                    appear as a `stage:<name>` token in the frozen stage
                    catalog in docs/OBSERVABILITY.md. Stage names are API
                    the same way metric names are: the per-stage
                    aer_trace_stage_<name>_seconds histograms and the
                    aerctl/Chrome export surfaces key on them.

Suppress a finding on one line with:  // aer-lint: allow(<rule>)

Usage:
  tools/aer_lint.py [--root DIR] [FILE...]
With no FILE arguments, lints every C++ source under src/, bench/, tests/,
and examples/ below the root. Exits 1 if any finding is printed.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

CPP_SUFFIXES = {".cc", ".cpp", ".h", ".hpp"}
LINT_DIRS = ("src", "bench", "tests", "examples")

ALLOW_PRAGMA = re.compile(r"aer-lint:\s*allow\(([a-z\-]+(?:\s*,\s*[a-z\-]+)*)\)")

RNG_ALLOWED = {"src/common/rng.h", "src/common/rng.cc"}
RNG_BANNED = re.compile(
    r"\b(?:s?rand|drand48|lrand48|mrand48|random)\s*\("
    r"|std\s*::\s*(?:random_device|mt19937(?:_64)?|minstd_rand0?|"
    r"default_random_engine|knuth_b|ranlux\w+|"
    r"(?:uniform_int|uniform_real|normal|lognormal|exponential|poisson|"
    r"geometric|binomial|negative_binomial|bernoulli|discrete|gamma|weibull|"
    r"extreme_value|chi_squared|cauchy|fisher_f|student_t|piecewise_\w+)"
    r"_distribution)"
)

RAW_ASSERT = re.compile(r"\bassert\s*\(")

FLOAT_TOKEN = re.compile(r"\bfloat\b")
# Library and bench code carry the accounting paths; tests/examples may cast
# for display, though today none do.
FLOAT_SCOPES = ("src/", "bench/")

UNCHECKED_AT = re.compile(r"\.\s*at\s*\(")
UNCHECKED_AT_SCOPES = ("src/", "bench/")

GUARD_SCOPES = ("src/", "bench/")

# The layers that deserialize untrusted files (recovery logs, Q-table
# checkpoints). Their parsers must fail loudly, not wrap around or throw.
UNCHECKED_IO_SCOPES = ("src/log/", "src/rl/")
RAW_NUMERIC_PARSE = re.compile(
    r"\b(?:strto(?:l|ll|ul|ull|ull_l|f|d|ld)|ato[ifl]l?|"
    r"std\s*::\s*sto(?:i|l|ll|ul|ull|f|d|ld))\s*\(")
# getline whose result is discarded (statement position). Condition-position
# uses — while (std::getline(...)), if (!std::getline(...)) — do not match.
DISCARDED_GETLINE = re.compile(r"^\s*(?:std\s*::\s*)?getline\s*\(")
FSTREAM_CTOR = re.compile(
    r"\bstd\s*::\s*[io]?fstream\s+\w+\s*[({]")
STREAM_CHECKED = re.compile(r"\b(?:good|is_open|fail)\s*\(")
# How many lines after an fstream construction may hold its health check.
STREAM_CHECK_WINDOW = 4

# Library layers that must stay silent: decisions and telemetry flow through
# return values and the obs/ registry, never a process-global stream.
DIRECT_OUTPUT_SCOPES = ("src/core/", "src/rl/", "src/sim/")
DIRECT_OUTPUT = re.compile(
    r"\bstd\s*::\s*(?:cout|cerr|clog)\b"
    r"|\b(?:printf|fprintf|puts|fputs|putchar)\s*\(")

# Locking in src/ funnels through the capability-annotated wrappers in
# common/mutex.h; raw std primitives there are invisible to Clang's
# thread-safety analysis. tests/bench may use std::thread freely but lock
# library state only through the library's own API, so they are out of scope.
MUTEX_SCOPES = ("src/",)
MUTEX_ALLOWED = {"src/common/mutex.h", "src/common/thread_annotations.h"}
RAW_MUTEX = re.compile(
    r"\bstd\s*::\s*(?:mutex|timed_mutex|recursive_mutex|"
    r"recursive_timed_mutex|shared_mutex|shared_timed_mutex|lock_guard|"
    r"unique_lock|scoped_lock|condition_variable(?:_any)?)\b")
MUTEX_MEMBER = re.compile(
    r"^\s*(?:mutable\s+)?(?:aer\s*::\s*)?Mutex\s+\w+\s*;")
GUARDED_FIELD = re.compile(r"\bAER_(?:GUARDED_BY|PT_GUARDED_BY)\s*\(")

# Metric registrations that must appear in the frozen catalog. Matched on
# the *raw* source (the names live inside string literals, which the
# stripper blanks); \s* spans the line break of a wrapped call.
METRIC_CATALOG_SCOPES = ("src/", "bench/")
METRIC_REGISTRATION = re.compile(
    r'\bGet(?:Counter|Gauge|Histogram|Stat)\s*\(\s*"(aer_[a-z0-9_]*)"')
METRIC_CATALOG_DOC = "docs/OBSERVABILITY.md"

# Critical-path stage names are frozen the same way metric names are: every
# name wrapped in AER_TRACE_STAGE("...") must appear as a `stage:<name>`
# token in the documented stage catalog. Matched on the raw source (the
# names live inside string literals, which the stripper blanks).
STAGE_CATALOG_SCOPES = ("src/", "bench/")
STAGE_REGISTRATION = re.compile(r'\bAER_TRACE_STAGE\s*\(\s*"([a-z0-9_]+)"')
STAGE_CATALOG_DOC = METRIC_CATALOG_DOC
STAGE_TOKEN = re.compile(r"stage:([a-z0-9_]+)")


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments and string/char literal contents, preserving
    newlines so findings keep their line numbers."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char | raw
    raw_delim = ""
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
            elif c == '"':
                # Raw string literal: R"delim( ... )delim"
                m = re.match(r'R"([^\s()\\]{0,16})\(', text[i - 1 : i + 18]) if i and text[i - 1] == "R" else None
                if m:
                    raw_delim = ")" + m.group(1) + '"'
                    state = "raw"
                    out.append('"')
                    i += 1 + len(m.group(1)) + 1
                    out.append(" " * (len(m.group(1)) + 1))
                else:
                    state = "string"
                    out.append('"')
                    i += 1
            elif c == "'":
                state = "char"
                out.append("'")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == quote:
                state = "code"
                out.append(quote)
                i += 1
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        elif state == "raw":
            if text.startswith(raw_delim, i):
                state = "code"
                out.append(" " * (len(raw_delim) - 1) + '"')
                i += len(raw_delim)
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
    return "".join(out)


def allowed_rules_by_line(text: str) -> dict[int, set[str]]:
    allows: dict[int, set[str]] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        m = ALLOW_PRAGMA.search(line)
        if m:
            allows[lineno] = {r.strip() for r in m.group(1).split(",")}
    return allows


class Linter:
    def __init__(self, root: Path):
        self.root = root
        self.findings: list[str] = []
        self._catalog: set[str] | None | bool = False  # False = not loaded
        self._stages: set[str] | None | bool = False   # False = not loaded

    def catalog_names(self) -> set[str] | None:
        """The aer_* names documented in docs/OBSERVABILITY.md, or None if
        the catalog document does not exist (scratch roots in the self
        tests) — in which case the metric-catalog rule is skipped."""
        if self._catalog is False:
            doc = self.root / METRIC_CATALOG_DOC
            if doc.is_file():
                self._catalog = set(
                    re.findall(r"aer_[a-z0-9_]*",
                               doc.read_text(encoding="utf-8")))
            else:
                self._catalog = None
        return self._catalog

    def stage_names(self) -> set[str] | None:
        """The stage:<name> tokens documented in docs/OBSERVABILITY.md, or
        None if the catalog document does not exist (scratch roots in the
        self tests) — in which case the stage-catalog rule is skipped."""
        if self._stages is False:
            doc = self.root / STAGE_CATALOG_DOC
            if doc.is_file():
                self._stages = set(
                    STAGE_TOKEN.findall(doc.read_text(encoding="utf-8")))
            else:
                self._stages = None
        return self._stages

    def report(self, path: Path, lineno: int, rule: str, message: str,
               allows: dict[int, set[str]]) -> None:
        if rule in allows.get(lineno, set()):
            return
        rel = path.relative_to(self.root)
        self.findings.append(f"{rel}:{lineno}: [{rule}] {message}")

    def lint_file(self, path: Path) -> None:
        rel = path.relative_to(self.root).as_posix()
        text = path.read_text(encoding="utf-8")
        allows = allowed_rules_by_line(text)
        code = strip_comments_and_strings(text)
        lines = code.splitlines()

        for lineno, line in enumerate(lines, 1):
            if rel not in RNG_ALLOWED and RNG_BANNED.search(line):
                self.report(
                    path, lineno, "rng-containment",
                    "non-deterministic / std <random> RNG outside "
                    "src/common/rng.*; draw through aer::Rng instead", allows)
            if RAW_ASSERT.search(line):
                self.report(
                    path, lineno, "no-raw-assert",
                    "raw assert() is compiled out under NDEBUG; use AER_CHECK*"
                    " or AER_DCHECK* from common/check.h", allows)
            if rel.startswith(FLOAT_SCOPES) and FLOAT_TOKEN.search(line):
                self.report(
                    path, lineno, "no-float",
                    "float in library/bench code: cost and downtime "
                    "accounting must use double or integral sim-time", allows)
            if rel.startswith(UNCHECKED_AT_SCOPES) and UNCHECKED_AT.search(line):
                self.report(
                    path, lineno, "no-unchecked-at",
                    ".at() throws without context; use "
                    "AER_CHECK_LT(i, c.size()) << context, then c[i]", allows)
            if rel.startswith(DIRECT_OUTPUT_SCOPES) and \
                    DIRECT_OUTPUT.search(line):
                self.report(
                    path, lineno, "no-direct-output",
                    "direct stream/printf output in a library layer; report "
                    "through return values, AER_CHECK messages, or obs/ "
                    "metrics and spans", allows)
            if rel.startswith(MUTEX_SCOPES) and rel not in MUTEX_ALLOWED \
                    and RAW_MUTEX.search(line):
                self.report(
                    path, lineno, "mutex-annotation",
                    "raw std locking primitive in src/; use aer::Mutex / "
                    "aer::MutexLock / aer::CondVar from common/mutex.h so "
                    "the thread-safety analysis sees the acquisition", allows)
            if rel.startswith(UNCHECKED_IO_SCOPES):
                self.lint_unchecked_io(path, lineno, line, lines, allows)

        if path.suffix in (".h", ".hpp") and rel.startswith(MUTEX_SCOPES) \
                and rel not in MUTEX_ALLOWED:
            self.lint_mutex_members(path, lines, allows)

        if path.suffix in (".h", ".hpp") and rel.startswith(GUARD_SCOPES):
            self.lint_include_guard(path, rel, lines, allows)

        if rel.startswith(METRIC_CATALOG_SCOPES):
            self.lint_metric_catalog(path, text, allows)

        if rel.startswith(STAGE_CATALOG_SCOPES):
            self.lint_stage_catalog(path, text, allows)

    def lint_metric_catalog(self, path: Path, text: str,
                            allows: dict[int, set[str]]) -> None:
        catalog = self.catalog_names()
        if catalog is None:
            return
        for m in METRIC_REGISTRATION.finditer(text):
            name = m.group(1)
            if name in catalog:
                continue
            lineno = text.count("\n", 0, m.start()) + 1
            # A wrapped call spans lines; honor a pragma on the name's line
            # (where it reads naturally) as well as the call's first line.
            name_lineno = text.count("\n", 0, m.start(1)) + 1
            if "metric-catalog" in allows.get(name_lineno, set()):
                continue
            self.report(
                path, lineno, "metric-catalog",
                f"metric '{name}' is registered here but missing from the "
                f"frozen catalog in {METRIC_CATALOG_DOC}; document it (and "
                f"update tests/obs/metric_names_test.cc) in the same change",
                allows)

    def lint_stage_catalog(self, path: Path, text: str,
                           allows: dict[int, set[str]]) -> None:
        stages = self.stage_names()
        if stages is None:
            return
        for m in STAGE_REGISTRATION.finditer(text):
            name = m.group(1)
            if name in stages:
                continue
            lineno = text.count("\n", 0, m.start()) + 1
            name_lineno = text.count("\n", 0, m.start(1)) + 1
            if "stage-catalog" in allows.get(name_lineno, set()):
                continue
            self.report(
                path, lineno, "stage-catalog",
                f"critical-path stage '{name}' is registered here but "
                f"missing from the frozen stage catalog in "
                f"{STAGE_CATALOG_DOC}; document it as `stage:{name}` in the "
                f"same change", allows)

    def lint_mutex_members(self, path: Path, lines: list[str],
                           allows: dict[int, set[str]]) -> None:
        """A header declaring an aer::Mutex member must guard something with
        it; otherwise the annotations prove nothing about the data."""
        if any(GUARDED_FIELD.search(line) for line in lines):
            return
        for lineno, line in enumerate(lines, 1):
            if MUTEX_MEMBER.match(line):
                self.report(
                    path, lineno, "mutex-annotation",
                    "aer::Mutex member in a header with no AER_GUARDED_BY "
                    "field; name the data this lock protects "
                    "(docs/STATIC_ANALYSIS.md)", allows)

    def lint_unchecked_io(self, path: Path, lineno: int, line: str,
                          lines: list[str],
                          allows: dict[int, set[str]]) -> None:
        if RAW_NUMERIC_PARSE.search(line):
            self.report(
                path, lineno, "unchecked-io",
                "raw numeric parse on untrusted input; use ParseInt64/"
                "ParseDouble/ParseHexU64 from common/string_util.h", allows)
        if DISCARDED_GETLINE.search(line):
            self.report(
                path, lineno, "unchecked-io",
                "getline result discarded; test the stream (e.g. "
                "while (std::getline(...)) or if (!std::getline(...)))",
                allows)
        if FSTREAM_CTOR.search(line):
            window = lines[lineno - 1 : lineno - 1 + 1 + STREAM_CHECK_WINDOW]
            if not any(STREAM_CHECKED.search(w) for w in window):
                self.report(
                    path, lineno, "unchecked-io",
                    "fstream opened without a nearby good()/is_open() "
                    "check; a silently-failed open reads as an empty file",
                    allows)

    def lint_include_guard(self, path: Path, rel: str, lines: list[str],
                           allows: dict[int, set[str]]) -> None:
        parts = Path(rel).parts
        # src/rl/qtable.h -> RL_QTABLE; bench/bench_common.h -> BENCH_BENCH_COMMON
        scoped = parts[1:] if parts[0] == "src" else parts
        stem = "_".join(scoped)[: -len(path.suffix)] + "_"
        expected = "AER_" + re.sub(r"[^A-Za-z0-9]", "_", stem).upper() + "H_"

        ifndef = define = None
        ifndef_line = 0
        for lineno, line in enumerate(lines, 1):
            m = re.match(r"\s*#\s*ifndef\s+(\S+)", line)
            if m and ifndef is None:
                ifndef, ifndef_line = m.group(1), lineno
                m2 = re.match(r"\s*#\s*define\s+(\S+)",
                              lines[lineno] if lineno < len(lines) else "")
                define = m2.group(1) if m2 else None
                break
        if ifndef is None:
            self.report(path, 1, "include-guard",
                        f"missing include guard (expected {expected})", allows)
        elif ifndef != expected or define != expected:
            self.report(
                path, ifndef_line, "include-guard",
                f"guard is '{ifndef}' / '#define {define}', expected "
                f"'{expected}'", allows)


def collect_files(root: Path, args: list[str]) -> list[Path]:
    if args:
        return [Path(a).resolve() for a in args]
    files = []
    for d in LINT_DIRS:
        base = root / d
        if base.is_dir():
            files.extend(p for p in sorted(base.rglob("*"))
                         if p.suffix in CPP_SUFFIXES and p.is_file())
    return files


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of tools/)")
    parser.add_argument("files", nargs="*",
                        help="specific files to lint (default: whole tree)")
    opts = parser.parse_args(argv)

    root = Path(opts.root).resolve() if opts.root else (
        Path(__file__).resolve().parent.parent)
    if not root.is_dir():
        print(f"aer_lint: root is not a directory: {root}", file=sys.stderr)
        return 2
    linter = Linter(root)
    for path in collect_files(root, opts.files):
        linter.lint_file(path)

    for finding in linter.findings:
        print(finding)
    if linter.findings:
        print(f"aer_lint: {len(linter.findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
