#!/usr/bin/env python3
"""Unit tests for tools/aer_lint.py: every rule must fire on a seeded
violation, stay quiet on the idiomatic equivalent, and honor the
`aer-lint: allow(...)` pragma."""

from __future__ import annotations

import sys
import tempfile
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import aer_lint  # noqa: E402


class LintRunner:
    """Writes files into a scratch repo root and runs the linter on them."""

    def __init__(self, root: Path):
        self.root = root

    def lint(self, rel_path: str, content: str) -> list[str]:
        path = self.root / rel_path
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(content, encoding="utf-8")
        linter = aer_lint.Linter(self.root)
        linter.lint_file(path)
        return linter.findings


class AerLintTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.repo = LintRunner(Path(self._tmp.name))

    def tearDown(self):
        self._tmp.cleanup()

    def assert_rule(self, findings: list[str], rule: str):
        self.assertTrue(any(f"[{rule}]" in f for f in findings),
                        f"expected [{rule}] in {findings}")

    # -- rng-containment ----------------------------------------------------

    def test_rand_outside_rng_flagged(self):
        findings = self.repo.lint("src/sim/platform.cc",
                                  "int f() { return rand() % 6; }\n")
        self.assert_rule(findings, "rng-containment")

    def test_std_engines_and_distributions_flagged(self):
        for snippet in ("std::mt19937 gen(42);",
                        "std::random_device rd;",
                        "std::uniform_int_distribution<int> d(0, 5);",
                        "std::normal_distribution<double> n;"):
            findings = self.repo.lint("src/rl/qlearning.cc", snippet + "\n")
            self.assert_rule(findings, "rng-containment")

    def test_rng_impl_files_are_exempt(self):
        findings = self.repo.lint("src/common/rng.cc",
                                  "// std::mt19937 comparison notes\n"
                                  "std::uint64_t x = 1;\n")
        self.assertEqual(findings, [])

    def test_mention_in_comment_not_flagged(self):
        findings = self.repo.lint("src/rl/policy.cc",
                                  "// std::mt19937 would be wrong here\n"
                                  "int x = 0;  // not rand() either\n")
        self.assertEqual(findings, [])

    # -- no-raw-assert ------------------------------------------------------

    def test_raw_assert_flagged(self):
        findings = self.repo.lint("src/core/recovery_manager.cc",
                                  "#include <cassert>\n"
                                  "void f(int n) { assert(n > 0); }\n")
        self.assert_rule(findings, "no-raw-assert")

    def test_static_assert_and_aer_check_ok(self):
        findings = self.repo.lint(
            "src/core/recovery_manager.cc",
            "static_assert(sizeof(int) == 4);\n"
            "void f(int n) { AER_CHECK_GT(n, 0) << \"n\"; }\n")
        self.assertEqual(findings, [])

    # -- include-guard ------------------------------------------------------

    def test_wrong_guard_flagged(self):
        findings = self.repo.lint("src/rl/qtable.h",
                                  "#ifndef QTABLE_H\n#define QTABLE_H\n"
                                  "#endif\n")
        self.assert_rule(findings, "include-guard")

    def test_missing_guard_flagged(self):
        findings = self.repo.lint("src/rl/qtable.h", "int x = 1;\n")
        self.assert_rule(findings, "include-guard")

    def test_correct_guards(self):
        for rel, guard in (("src/rl/qtable.h", "AER_RL_QTABLE_H_"),
                           ("src/common/sim_time.h", "AER_COMMON_SIM_TIME_H_"),
                           ("bench/bench_common.h", "AER_BENCH_BENCH_COMMON_H_")):
            findings = self.repo.lint(
                rel, f"#ifndef {guard}\n#define {guard}\n#endif  // {guard}\n")
            self.assertEqual(findings, [], rel)

    # -- no-float -----------------------------------------------------------

    def test_float_in_accounting_path_flagged(self):
        findings = self.repo.lint("src/sim/cost_model.cc",
                                  "float total_cost = 0.f;\n")
        self.assert_rule(findings, "no-float")

    def test_float_in_comment_or_test_ok(self):
        self.assertEqual(
            self.repo.lint("src/sim/cost_model.cc",
                           "// never use float here\ndouble cost = 0.0;\n"),
            [])
        self.assertEqual(
            self.repo.lint("tests/sim/cost_model_test.cc", "float x = 1.f;\n"),
            [])

    # -- no-unchecked-at ----------------------------------------------------

    def test_container_at_flagged(self):
        findings = self.repo.lint("src/rl/qlearning.cc",
                                  "double q = table.at(key);\n")
        self.assert_rule(findings, "no-unchecked-at")

    def test_at_in_tests_ok(self):
        findings = self.repo.lint("tests/rl/qtable_test.cc",
                                  "EXPECT_EQ(groups.at(7).size(), 3u);\n")
        self.assertEqual(findings, [])

    # -- unchecked-io -------------------------------------------------------

    def test_raw_strtoull_in_parser_layer_flagged(self):
        findings = self.repo.lint(
            "src/rl/qtable.cc",
            "std::uint64_t k = std::strtoull(buf, &end, 16);\n")
        self.assert_rule(findings, "unchecked-io")

    def test_std_stoi_flagged_checked_parse_ok(self):
        self.assert_rule(
            self.repo.lint("src/log/recovery_log.cc",
                           "int t = std::stoi(field);\n"),
            "unchecked-io")
        self.assertEqual(
            self.repo.lint("src/log/recovery_log.cc",
                           "const auto t = ParseInt64(field);\n"),
            [])

    def test_raw_parse_outside_io_layers_not_flagged(self):
        # common/string_util.cc is where the checked wrappers live; the rule
        # scopes to the deserialization layers only.
        findings = self.repo.lint(
            "src/common/string_util.cc",
            "const long long v = std::strtoll(buf.c_str(), &end, 10);\n")
        self.assertEqual(findings, [])

    def test_discarded_getline_flagged(self):
        findings = self.repo.lint("src/log/recovery_log.cc",
                                  "std::getline(is, line);\n")
        self.assert_rule(findings, "unchecked-io")

    def test_condition_position_getline_ok(self):
        findings = self.repo.lint(
            "src/log/recovery_log.cc",
            "while (std::getline(is, line)) { use(line); }\n"
            "if (!std::getline(is, header)) return false;\n")
        self.assertEqual(findings, [])

    def test_unchecked_fstream_flagged(self):
        findings = self.repo.lint("src/rl/qtable.cc",
                                  "std::ifstream is(path);\n"
                                  "Read(is, out);\n")
        self.assert_rule(findings, "unchecked-io")

    def test_checked_fstream_ok(self):
        findings = self.repo.lint(
            "src/rl/qtable.cc",
            "std::ifstream is(path);\n"
            "if (!is.good()) return false;\n")
        self.assertEqual(findings, [])
        findings = self.repo.lint(
            "src/log/recovery_log.cc",
            "std::ofstream os(path);\n"
            "AER_CHECK(os.good()) << path;\n")
        self.assertEqual(findings, [])

    # -- no-direct-output ---------------------------------------------------

    def test_cout_in_library_layer_flagged(self):
        for snippet in ("std::cout << stats.cures << std::endl;",
                        "std::cerr << \"timeout\" << machine;",
                        "printf(\"trained %d types\\n\", n);",
                        "std::fprintf(stderr, \"sweep %lld\\n\", sweep);"):
            for scope in ("src/core/recovery_manager.cc",
                          "src/rl/qlearning.cc", "src/sim/platform.cc"):
                findings = self.repo.lint(scope, snippet + "\n")
                self.assert_rule(findings, "no-direct-output")

    def test_output_outside_library_layers_ok(self):
        # The CLI, benches, and tests print by design; so may src layers
        # outside the scoped three (e.g. log_report builds report strings).
        for scope in ("examples/aerctl.cpp", "bench/bench_common.cc",
                      "tests/core/manager_test.cc", "src/log/log_report.cc"):
            findings = self.repo.lint(
                scope, "std::printf(\"%s\", report.c_str());\n")
            self.assertEqual(findings, [], scope)

    def test_output_mention_in_comment_or_string_ok(self):
        findings = self.repo.lint(
            "src/core/recovery_manager.cc",
            "// never std::cout from here; emit a span instead\n"
            "const char* kHint = \"printf(...) is banned in src/core\";\n")
        self.assertEqual(findings, [])

    def test_direct_output_allow_pragma(self):
        findings = self.repo.lint(
            "src/rl/qlearning.cc",
            "std::cerr << x;  // aer-lint: allow(no-direct-output)\n")
        self.assertEqual(findings, [])

    # -- mutex-annotation ---------------------------------------------------

    def test_raw_std_mutex_in_src_flagged(self):
        for snippet in ("std::mutex mu_;",
                        "std::lock_guard<std::mutex> lock(mu_);",
                        "std::unique_lock<std::mutex> lock(mu_);",
                        "std::scoped_lock lock(a_, b_);",
                        "std::condition_variable cv_;"):
            findings = self.repo.lint("src/obs/tracer.cc", snippet + "\n")
            self.assert_rule(findings, "mutex-annotation")

    def test_aer_mutex_with_guarded_field_ok(self):
        findings = self.repo.lint(
            "src/obs/widget.h",
            "#ifndef AER_OBS_WIDGET_H_\n"
            "#define AER_OBS_WIDGET_H_\n"
            "class Widget {\n"
            "  mutable aer::Mutex mu_;\n"
            "  int value_ AER_GUARDED_BY(mu_) = 0;\n"
            "};\n"
            "#endif  // AER_OBS_WIDGET_H_\n")
        self.assertEqual(findings, [])

    def test_unannotated_aer_mutex_member_flagged(self):
        findings = self.repo.lint(
            "src/obs/widget.h",
            "#ifndef AER_OBS_WIDGET_H_\n"
            "#define AER_OBS_WIDGET_H_\n"
            "class Widget {\n"
            "  mutable Mutex mu_;\n"
            "  int value_ = 0;\n"
            "};\n"
            "#endif  // AER_OBS_WIDGET_H_\n")
        self.assert_rule(findings, "mutex-annotation")

    def test_mutex_wrapper_header_is_exempt(self):
        findings = self.repo.lint(
            "src/common/mutex.h",
            "#ifndef AER_COMMON_MUTEX_H_\n"
            "#define AER_COMMON_MUTEX_H_\n"
            "class Mutex { std::mutex mu_; };\n"
            "#endif  // AER_COMMON_MUTEX_H_\n")
        self.assertEqual(findings, [])

    def test_raw_mutex_outside_src_not_flagged(self):
        findings = self.repo.lint(
            "tests/common/pool_test.cc",
            "std::mutex mu;\nstd::lock_guard<std::mutex> lock(mu);\n")
        self.assertEqual(findings, [])

    def test_mutex_annotation_allow_pragma(self):
        findings = self.repo.lint(
            "src/obs/special.cc",
            "std::mutex raw;  // aer-lint: allow(mutex-annotation)\n")
        self.assertEqual(findings, [])

    # -- metric-catalog -----------------------------------------------------

    CATALOG = ("# Observability\n\n"
               "- `aer_recovery_processes_total` — counter\n"
               "- `aer_training_types` — gauge\n")

    def write_catalog(self):
        doc = self.repo.root / "docs/OBSERVABILITY.md"
        doc.parent.mkdir(parents=True, exist_ok=True)
        doc.write_text(self.CATALOG, encoding="utf-8")

    def test_undocumented_metric_flagged(self):
        self.write_catalog()
        findings = self.repo.lint(
            "src/core/recovery_manager.cc",
            'metrics.GetCounter("aer_recovery_new_thing_total").Inc();\n')
        self.assert_rule(findings, "metric-catalog")
        self.assertIn("aer_recovery_new_thing_total", findings[0])

    def test_documented_metric_ok(self):
        self.write_catalog()
        findings = self.repo.lint(
            "src/core/recovery_manager.cc",
            'metrics.GetCounter("aer_recovery_processes_total").Inc();\n'
            'metrics.GetGauge("aer_training_types").Set(1.0);\n')
        self.assertEqual(findings, [])

    def test_wrapped_registration_call_matched(self):
        # A call wrapped across the line break still registers the name.
        self.write_catalog()
        findings = self.repo.lint(
            "src/rl/telemetry.cc",
            "metrics.GetCounter(\n"
            '    "aer_training_undocumented_total");\n')
        self.assert_rule(findings, "metric-catalog")
        self.assertIn(":1:", findings[0])

    def test_tests_and_non_aer_names_exempt(self):
        self.write_catalog()
        self.assertEqual(
            self.repo.lint("tests/obs/metrics_test.cc",
                           'registry.GetCounter("aer_test_total").Inc();\n'),
            [])
        self.assertEqual(
            self.repo.lint("src/obs/metrics.cc",
                           'registry.GetCounter(name);\n'),
            [])

    def test_metric_catalog_allow_pragma(self):
        self.write_catalog()
        findings = self.repo.lint(
            "src/core/recovery_manager.cc",
            'metrics.GetCounter("aer_tmp_total");'
            '  // aer-lint: allow(metric-catalog)\n')
        self.assertEqual(findings, [])

    def test_metric_catalog_pragma_on_wrapped_name_line(self):
        # For a call wrapped across lines the pragma may sit on the name's
        # line, where it reads naturally.
        self.write_catalog()
        findings = self.repo.lint(
            "bench/micro_benchmarks.cc",
            "registry.GetCounter(\n"
            '    "aer_bench_probe");  // aer-lint: allow(metric-catalog)\n')
        self.assertEqual(findings, [])

    def test_missing_catalog_doc_skips_rule(self):
        # Scratch roots (like this test's) have no docs/OBSERVABILITY.md;
        # the rule must not fire on them.
        findings = self.repo.lint(
            "src/core/recovery_manager.cc",
            'metrics.GetCounter("aer_recovery_whatever_total");\n')
        self.assertEqual(findings, [])

    # -- stage-catalog ------------------------------------------------------

    def write_stage_catalog(self):
        doc = self.repo.root / "docs/OBSERVABILITY.md"
        doc.parent.mkdir(parents=True, exist_ok=True)
        doc.write_text("# Observability\n\n"
                       "Stage catalog: `stage:detect`, `stage:action_exec`.\n",
                       encoding="utf-8")

    def test_undocumented_stage_flagged(self):
        self.write_stage_catalog()
        findings = self.repo.lint(
            "src/obs/critical_path.cc",
            'return AER_TRACE_STAGE("warp_drive");\n')
        self.assert_rule(findings, "stage-catalog")
        self.assertIn("warp_drive", findings[0])

    def test_documented_stage_ok(self):
        self.write_stage_catalog()
        findings = self.repo.lint(
            "src/obs/critical_path.cc",
            'return AER_TRACE_STAGE("detect");\n'
            'return AER_TRACE_STAGE("action_exec");\n')
        self.assertEqual(findings, [])

    def test_stage_catalog_allow_pragma(self):
        self.write_stage_catalog()
        findings = self.repo.lint(
            "src/obs/critical_path.cc",
            'return AER_TRACE_STAGE("tmp");'
            '  // aer-lint: allow(stage-catalog)\n')
        self.assertEqual(findings, [])

    def test_missing_catalog_doc_skips_stage_rule(self):
        findings = self.repo.lint(
            "src/obs/critical_path.cc",
            'return AER_TRACE_STAGE("anything_goes");\n')
        self.assertEqual(findings, [])

    # -- allow pragma & stripping -------------------------------------------

    def test_allow_pragma_suppresses(self):
        findings = self.repo.lint(
            "src/rl/qlearning.cc",
            "double q = table.at(key);  // aer-lint: allow(no-unchecked-at)\n")
        self.assertEqual(findings, [])

    def test_violation_in_string_literal_not_flagged(self):
        findings = self.repo.lint(
            "src/log/log_report.cc",
            'const char* kMsg = "do not call rand() or std::mt19937";\n')
        self.assertEqual(findings, [])

    def test_block_comment_stripping_preserves_line_numbers(self):
        findings = self.repo.lint("src/log/log_report.cc",
                                  "/* multi\nline\ncomment */\n"
                                  "int bad = rand();\n")
        self.assert_rule(findings, "rng-containment")
        self.assertIn(":4:", findings[0])

    # -- end-to-end exit codes ----------------------------------------------

    def test_main_exit_codes(self):
        root = Path(self._tmp.name)
        (root / "src/common").mkdir(parents=True, exist_ok=True)
        clean = root / "src/common/ok.cc"
        clean.write_text("int x = 0;\n", encoding="utf-8")
        self.assertEqual(aer_lint.main(["--root", str(root)]), 0)
        dirty = root / "src/common/bad.cc"
        dirty.write_text("int y = rand();\n", encoding="utf-8")
        self.assertEqual(aer_lint.main(["--root", str(root)]), 1)

    def test_main_rejects_missing_root(self):
        # A typo'd --root must not silently lint zero files and pass.
        missing = Path(self._tmp.name) / "no/such/dir"
        self.assertEqual(aer_lint.main(["--root", str(missing)]), 2)


if __name__ == "__main__":
    unittest.main()
